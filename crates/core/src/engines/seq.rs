//! Shared machinery of the interpolation-sequence engines.
//!
//! The three sequence-based engines of the paper (`ITPSEQ`, `SITPSEQ`,
//! `ITPSEQCBA`) share one outer loop — Fig. 2 extended with the serial
//! computation of Fig. 4 and the abstraction-refinement of Fig. 5.  This
//! module implements that loop once, parameterised by:
//!
//! * the BMC check formulation (*exact-k* or *exact-assume-k*),
//! * the serial fraction `αs` (0 = fully parallel, 1 = fully serial),
//! * whether counterexample-based abstraction is enabled.
//!
//! The module is `pub(crate)` (rather than private) so that engine
//! families outside `engines/` — a portfolio runner combining
//! [`SeqConfig`]/[`run`] with [`crate::engines::pdr`], for instance —
//! can drive this loop without re-deriving it.  The PDR subsystem itself
//! keeps its own frame machinery (clause traces, not interpolant
//! columns) and does not depend on this module.

use crate::abstraction::Abstraction;
use crate::certificate::{Certificate, InvariantCert, InvariantCone};
use crate::engines::{CancelToken, EngineProbe, RunBudget};
use crate::state::{encode_state_lit, StateSpace};
use crate::{EngineResult, EngineStats, Options, Verdict};
use aig::Aig;
use cnf::{BmcCheck, Clause, IncrementalUnroller, Unroller};
use itp::InterpolationContext;
use sat::{Proof, SolveResult, Solver};
use std::collections::HashMap;
use std::time::Instant;
use telemetry::{ArgValue, Telemetry};

/// Static configuration distinguishing the three sequence engines.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SeqConfig {
    /// The engine's reporting name (labels its trace spans).
    pub name: &'static str,
    /// Fraction of the sequence computed serially (Fig. 4's `αs`).
    pub alpha_serial: f64,
    /// Enable counterexample-based abstraction (Fig. 5).
    pub use_cba: bool,
}

/// How frame 0 of an unrolling is constrained.
enum InitKind<'a> {
    /// The design's reset state.  The engine itself now serves reset
    /// instances from [`CachedUnrolling`]; this variant remains as the
    /// scratch reference the cache is tested bit-identical against.
    #[cfg_attr(not(test), allow(dead_code))]
    Reset,
    /// An arbitrary symbolic state set (used by serial steps).
    Set {
        space: &'a StateSpace,
        set: aig::Lit,
        concrete_to_model: &'a [usize],
    },
}

/// A built (partitioned) unrolling plus its frame variable maps.
struct SeqInstance {
    cnf: cnf::Cnf,
    frame_latches: Vec<Vec<cnf::Lit>>,
}

/// The per-run unrolling cache of the main bound loop: a persistent
/// [`IncrementalUnroller`] that keeps the reset-state unrolling of the
/// (possibly abstract) model alive across bounds, so growing the bound
/// only Tseitin-encodes the new frame instead of all `k` of them.
///
/// The produced instances are **bit-identical** to what
/// [`build_instance`] with [`InitKind::Reset`] builds from scratch — same
/// clauses, same order, same variable numbering, same partition labels —
/// because frame `f`'s clauses carry the same partition (`f + 1`) at every
/// bound and the bad cone of frame `f` always lands in partition `f + 2`
/// whether it is encoded as the bound-`f` target or as the assume-`k`
/// property constraint of a later bound (the tests pin this equality
/// down).  Only the per-bound target *unit* differs between bounds, so it
/// is kept out of the cache and appended to each snapshot.
///
/// The proof-logging SAT solver is deliberately *not* shared: every bound
/// solves a fresh snapshot, because the interpolation queries need a
/// refutation of exactly the bound-`k` partition layout.
struct CachedUnrolling {
    unroller: IncrementalUnroller,
    bad_index: usize,
    check: BmcCheck,
    /// Frames unrolled so far (0 = only the initial frame).
    bound: usize,
}

impl CachedUnrolling {
    fn new(model: &Aig, bad_index: usize, check: BmcCheck) -> CachedUnrolling {
        let mut unroller = IncrementalUnroller::new(model);
        unroller.builder_mut().set_partition(1);
        unroller.assert_initial(0);
        CachedUnrolling {
            unroller,
            bad_index,
            check,
            bound: 0,
        }
    }

    /// Extends the cached unrolling to `k` frames, mirroring the frame
    /// loop of [`build_instance`] (partition `f + 1` per transition, plus
    /// the assume-k property constraint on the previous frame).
    fn ensure_bound(&mut self, k: usize) {
        while self.bound < k {
            let f = self.bound + 1;
            self.unroller.builder_mut().set_partition((f + 1) as u32);
            if self.check == BmcCheck::ExactAssume && f >= 2 {
                let bad_prev = self.unroller.bad_lit(f - 1, self.bad_index);
                self.unroller.assert_lit(!bad_prev);
            }
            self.unroller.add_frame();
            self.bound = f;
        }
    }

    /// Produces the full bound-`k` instance for a fresh proof solver,
    /// reusing every cached frame encoding.
    fn instance(&mut self, k: usize, stats: &mut EngineStats) -> SeqInstance {
        let encode_start = Instant::now();
        self.ensure_bound(k);
        let target_partition = (k + 2) as u32;
        let cnf = match self.check {
            BmcCheck::ExactAssume => {
                // The bad cone of frame k belongs in the cache: the next
                // bound re-uses it for its property assumption (and it
                // carries the same partition label either way).
                self.unroller.builder_mut().set_partition(target_partition);
                let bad = self.unroller.bad_lit(k, self.bad_index);
                self.unroller
                    .snapshot_with([Clause::new(vec![bad], target_partition)])
            }
            BmcCheck::Exact | BmcCheck::Bound => {
                // exact-k never re-visits earlier bad cones, so the target
                // cone must *not* leak into the cache — encode it on a
                // throwaway clone, exactly as a scratch build would.
                let mut scratch = self.unroller.clone();
                scratch.builder_mut().set_partition(target_partition);
                let bad = scratch.bad_lit(k, self.bad_index);
                scratch.assert_lit(bad);
                scratch.into_cnf()
            }
        };
        let frame_latches = (0..=k).map(|f| self.unroller.latch_lits(f)).collect();
        stats.encode_time += encode_start.elapsed();
        SeqInstance { cnf, frame_latches }
    }
}

/// Builds the partitioned unrolling of `model` covering `transitions` steps,
/// where sub-frame 0 corresponds to absolute frame `offset` of a bound
/// `total_bound` problem.
///
/// Partition layout: 1 = the initial constraint, `1 + f` = the transition
/// into sub-frame `f` (plus the assume-k property assumption on sub-frame
/// `f - 1` when applicable), `transitions + 2` = the `¬p` target.
fn build_instance(
    model: &Aig,
    bad_index: usize,
    transitions: usize,
    offset: usize,
    total_bound: usize,
    check: BmcCheck,
    init: InitKind<'_>,
) -> SeqInstance {
    let mut unroller = Unroller::new(model);
    unroller.builder_mut().set_partition(1);
    match init {
        InitKind::Reset => unroller.assert_initial(0),
        InitKind::Set {
            space,
            set,
            concrete_to_model,
        } => {
            let lit = encode_state_lit(&mut unroller, 0, space, set, concrete_to_model);
            unroller.assert_lit(lit);
        }
    }
    for f in 1..=transitions {
        unroller.builder_mut().set_partition((f + 1) as u32);
        let absolute = offset + f - 1;
        if check == BmcCheck::ExactAssume && absolute >= 1 && absolute < total_bound {
            let bad_prev = unroller.bad_lit(f - 1, bad_index);
            unroller.assert_lit(!bad_prev);
        }
        unroller.add_frame();
    }
    unroller
        .builder_mut()
        .set_partition((transitions + 2) as u32);
    let bad = unroller.bad_lit(transitions, bad_index);
    unroller.assert_lit(bad);
    let frame_latches = (0..=transitions).map(|f| unroller.latch_lits(f)).collect();
    SeqInstance {
        cnf: unroller.into_cnf(),
        frame_latches,
    }
}

fn solve(
    cnf: &cnf::Cnf,
    stats: &mut EngineStats,
    budget: &RunBudget,
    reduce: Option<u64>,
    probe: &EngineProbe,
    telemetry: &Telemetry,
) -> (SolveResult, Option<Proof>) {
    let mut solver = Solver::new();
    solver.set_reduce_interval(reduce);
    budget.govern(&mut solver);
    solver.set_progress_probe(probe.probe());
    solver.add_cnf(cnf);
    stats.sat_calls += 1;
    stats.clauses_encoded += cnf.clauses.len() as u64;
    let query = telemetry.span_args("sat", || {
        vec![("clauses", ArgValue::U64(cnf.clauses.len() as u64))]
    });
    let result = solver.solve();
    query.end();
    stats.add_solver_delta(solver.stats());
    let proof = if result == SolveResult::Unsat {
        solver.proof()
    } else {
        None
    };
    (result, proof)
}

/// Re-derives a replayable input trace for a bound-`bound` falsification
/// of `model` on a throwaway scratch instance.
///
/// The cached unrolling cannot serve the trace directly: pinning input
/// variables inside the cache would perturb its variable numbering, which
/// is tested bit-identical against scratch builds (and under the exact-k
/// formulation the target cone lives on a throwaway clone anyway).  One
/// extra SAT call on the terminal path — the instance is known
/// satisfiable — buys the model back without touching the cache.
#[allow(clippy::too_many_arguments)]
fn falsification_trace(
    model: &Aig,
    bad_index: usize,
    bound: usize,
    check: BmcCheck,
    num_inputs: usize,
    reduce: Option<u64>,
    stats: &mut EngineStats,
    budget: &RunBudget,
) -> Option<Vec<Vec<bool>>> {
    let encode_start = Instant::now();
    let mut unroller = Unroller::new(model);
    unroller.assert_initial(0);
    for f in 1..=bound {
        if check == BmcCheck::ExactAssume && f >= 2 {
            let bad_prev = unroller.bad_lit(f - 1, bad_index);
            unroller.assert_lit(!bad_prev);
        }
        unroller.add_frame();
    }
    let bad = unroller.bad_lit(bound, bad_index);
    unroller.assert_lit(bad);
    let frame_inputs: Vec<Vec<cnf::Lit>> = (0..=bound)
        .map(|f| (0..num_inputs).map(|i| unroller.input_lit(f, i)).collect())
        .collect();
    let cnf = unroller.into_cnf();
    let mut solver = Solver::new();
    solver.set_proof_logging(false);
    solver.set_reduce_interval(reduce);
    budget.govern(&mut solver);
    solver.add_cnf(&cnf);
    stats.sat_calls += 1;
    stats.clauses_encoded += cnf.clauses.len() as u64;
    stats.encode_time += encode_start.elapsed();
    let result = solver.solve();
    stats.add_solver_delta(solver.stats());
    if result != SolveResult::Sat {
        return None;
    }
    Some(
        frame_inputs
            .iter()
            .map(|frame| {
                frame
                    .iter()
                    .map(|&lit| solver.lit_value(lit).unwrap_or(false))
                    .collect()
            })
            .collect(),
    )
}

/// Extracts the interpolants at the given sub-instance cuts, mapping shared
/// frame variables to state-space latches.
fn extract_interpolants(
    proof: &Proof,
    instance: &SeqInstance,
    cuts: &[u32],
    space: &mut StateSpace,
    model_to_concrete: &[usize],
    stats: &mut EngineStats,
) -> Result<Vec<aig::Lit>, String> {
    let mut var_to_latch: HashMap<u32, usize> = HashMap::new();
    for lits in &instance.frame_latches {
        for (model_latch, lit) in lits.iter().enumerate() {
            var_to_latch.insert(lit.var().index(), model_to_concrete[model_latch]);
        }
    }
    let latch_lits: Vec<aig::Lit> = (0..space.num_latches()).map(|i| space.latch(i)).collect();
    let ctx = InterpolationContext::new(proof).map_err(|e| e.to_string())?;
    let itps = ctx
        .sequence_for_cuts(cuts, space.manager_mut(), &|_, v| {
            let latch = *var_to_latch
                .get(&v.index())
                .expect("shared interpolant variables are frame latch variables");
            latch_lits[latch]
        })
        .map_err(|e| e.to_string())?;
    stats.interpolants += itps.len() as u64;
    Ok(itps)
}

/// Computes the interpolation sequence `I_1 … I_k` for bound `k`, given the
/// already-refuted full instance and its proof, using the serial/parallel
/// mix requested by `alpha_serial` (Fig. 4).
#[allow(clippy::too_many_arguments)]
fn compute_sequence(
    model: &Aig,
    bound: usize,
    check: BmcCheck,
    alpha_serial: f64,
    reduce: Option<u64>,
    probe: &EngineProbe,
    space: &mut StateSpace,
    model_to_concrete: &[usize],
    concrete_to_model: &[usize],
    full_instance: &SeqInstance,
    full_proof: &Proof,
    stats: &mut EngineStats,
    budget: &RunBudget,
    telemetry: &Telemetry,
) -> Result<Vec<aig::Lit>, crate::types::StopReason> {
    use crate::types::StopReason;
    let n = bound + 1;
    let serial = ((alpha_serial * n as f64).floor() as usize).min(bound);
    let mut sequence: Vec<aig::Lit> = Vec::with_capacity(bound);

    // Serial part: I_j = ITP(I_{j-1} ∧ A_j, ⋀_{i>j} A_i), each from its own
    // refutation.  The first step reuses the proof of the full instance
    // (its A side is exactly S0 ∧ A_1).
    for j in 1..=serial {
        let (instance, proof) = if j == 1 {
            (None, full_proof.clone())
        } else {
            let prev = sequence[j - 2];
            let encode_start = Instant::now();
            let inst = build_instance(
                model,
                0,
                bound - j + 1,
                j - 1,
                bound,
                check,
                InitKind::Set {
                    space,
                    set: prev,
                    concrete_to_model,
                },
            );
            stats.encode_time += encode_start.elapsed();
            let (result, proof) = solve(&inst.cnf, stats, budget, reduce, probe, telemetry);
            match result {
                SolveResult::Unsat => {}
                SolveResult::Sat => {
                    return Err(StopReason::other(format!(
                        "serial interpolation step {j} was unexpectedly satisfiable"
                    )));
                }
                SolveResult::Interrupted => return Err(budget.interrupt_reason()),
            }
            (Some(inst), proof.expect("unsat result has a proof"))
        };
        let inst_ref = instance.as_ref().unwrap_or(full_instance);
        let itp = extract_interpolants(&proof, inst_ref, &[2], space, model_to_concrete, stats)
            .map_err(StopReason::other)?;
        sequence.push(itp[0]);
    }

    // Parallel part: the remaining elements all come from one proof.
    if serial < bound {
        if serial == 0 {
            // Plain interpolation sequence: every element from the proof of
            // the full instance.
            let cuts: Vec<u32> = (2..=(bound + 1) as u32).collect();
            let itps = extract_interpolants(
                full_proof,
                full_instance,
                &cuts,
                space,
                model_to_concrete,
                stats,
            )
            .map_err(StopReason::other)?;
            sequence.extend(itps);
        } else {
            let prev = sequence[serial - 1];
            let encode_start = Instant::now();
            let inst = build_instance(
                model,
                0,
                bound - serial,
                serial,
                bound,
                check,
                InitKind::Set {
                    space,
                    set: prev,
                    concrete_to_model,
                },
            );
            stats.encode_time += encode_start.elapsed();
            let (result, proof) = solve(&inst.cnf, stats, budget, reduce, probe, telemetry);
            match result {
                SolveResult::Unsat => {}
                SolveResult::Sat => {
                    return Err(StopReason::other(
                        "parallel remainder of the serial sequence was unexpectedly satisfiable",
                    ));
                }
                SolveResult::Interrupted => return Err(budget.interrupt_reason()),
            }
            let proof = proof.expect("unsat result has a proof");
            let cuts: Vec<u32> = (2..=(bound - serial + 1) as u32).collect();
            let itps = extract_interpolants(&proof, &inst, &cuts, space, model_to_concrete, stats)
                .map_err(StopReason::other)?;
            sequence.extend(itps);
        }
    }
    debug_assert_eq!(sequence.len(), bound);
    Ok(sequence)
}

enum ExtendOutcome {
    /// The abstract counterexample concretises: the property fails.  The
    /// payload is the concrete input trace read off the satisfying
    /// assignment (`None` when certificate collection is off).
    ConcreteCounterexample(Option<Vec<Vec<bool>>>),
    /// The counterexample was spurious; the abstraction has been refined.
    Refined,
    /// The run was cancelled mid-check.
    Cancelled,
}

/// Checks an abstract counterexample against the concrete design
/// (Fig. 5's `EXTEND`) and refines the abstraction from the unsatisfiable
/// assumption core when it is spurious (`REFINE`).
#[allow(clippy::too_many_arguments)]
fn extend_or_refine(
    design: &Aig,
    bad_index: usize,
    bound: usize,
    abstraction: &mut Abstraction,
    check: BmcCheck,
    reduce: Option<u64>,
    record_trace: bool,
    stats: &mut EngineStats,
    budget: &RunBudget,
    telemetry: &Telemetry,
) -> ExtendOutcome {
    let _extend = telemetry.span_args("extend", || vec![("k", ArgValue::U64(bound as u64))]);
    let encode_start = Instant::now();
    let mut unroller = Unroller::new(design);
    let mut guards: Vec<Option<cnf::Lit>> = vec![None; design.num_latches()];
    let mut activation: Vec<(cnf::Lit, usize)> = Vec::new();
    for (latch, guard) in guards.iter_mut().enumerate() {
        if !abstraction.is_visible(latch) {
            let a = unroller.builder_mut().new_lit();
            *guard = Some(a);
            activation.push((a, latch));
        }
    }
    unroller.assert_initial_guarded(0, &guards);
    for f in 1..=bound {
        if check == BmcCheck::ExactAssume && f >= 2 {
            let bad_prev = unroller.bad_lit(f - 1, bad_index);
            unroller.assert_lit(!bad_prev);
        }
        unroller.add_frame_guarded(&guards);
    }
    let bad = unroller.bad_lit(bound, bad_index);
    unroller.assert_lit(bad);
    // Pin the concrete input variables of every cycle before the unroller
    // is consumed, so a concretised counterexample can be read back as a
    // replayable trace (input variables carry no clauses).
    let frame_inputs: Vec<Vec<cnf::Lit>> = if record_trace {
        (0..=bound)
            .map(|f| {
                (0..design.num_inputs())
                    .map(|i| unroller.input_lit(f, i))
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };

    let cnf = unroller.into_cnf();
    let mut solver = Solver::new();
    // This query only reads the assumption core on Unsat, never a proof —
    // skip chain recording so DB reduction stays unrestricted.
    solver.set_proof_logging(false);
    solver.set_reduce_interval(reduce);
    budget.govern(&mut solver);
    solver.add_cnf(&cnf);
    stats.sat_calls += 1;
    stats.clauses_encoded += cnf.clauses.len() as u64;
    stats.encode_time += encode_start.elapsed();
    let assumptions: Vec<cnf::Lit> = activation.iter().map(|&(a, _)| a).collect();
    let result = solver.solve_with_assumptions(&assumptions);
    stats.add_solver_delta(solver.stats());
    match result {
        SolveResult::Sat => {
            let trace = record_trace.then(|| {
                frame_inputs
                    .iter()
                    .map(|frame| {
                        frame
                            .iter()
                            .map(|&lit| solver.lit_value(lit).unwrap_or(false))
                            .collect()
                    })
                    .collect()
            });
            ExtendOutcome::ConcreteCounterexample(trace)
        }
        SolveResult::Interrupted => ExtendOutcome::Cancelled,
        SolveResult::Unsat => {
            let core = solver.assumption_core();
            let mut to_add: Vec<usize> = activation
                .iter()
                .filter(|&&(a, _)| core.contains(&a) || core.contains(&!a))
                .map(|&(_, latch)| latch)
                .collect();
            if to_add.is_empty() {
                // Defensive fallback: refine with every invisible latch.
                to_add = activation.iter().map(|&(_, latch)| latch).collect();
            }
            abstraction.refine(to_add);
            ExtendOutcome::Refined
        }
    }
}

/// The shared outer loop of the sequence-based engines.
pub(crate) fn run(
    design: &Aig,
    bad_index: usize,
    options: &Options,
    config: SeqConfig,
    cancel: &CancelToken,
) -> EngineResult {
    let start = Instant::now();
    let budget = RunBudget::arm(cancel, start, options);
    let stop_reason = || budget.stop_reason();
    let telemetry = &options.telemetry;
    let run_label = format!("{}.run", config.name);
    let _run = telemetry.span_args(&run_label, || {
        vec![
            ("latches", ArgValue::U64(design.num_latches() as u64)),
            ("cba", ArgValue::U64(u64::from(config.use_cba))),
        ]
    });
    let mut stats = EngineStats::default();
    let probe = EngineProbe::new(telemetry, options.probe_interval);
    let mut space = StateSpace::new(design.num_latches());
    // `ℐ_j` column conjunctions, persisted across bounds (1-based index j).
    let mut columns: Vec<aig::Lit> = Vec::new();

    if let Some((verdict, certificate)) =
        crate::engines::bmc::depth0_verdict(design, bad_index, &budget, &mut stats, options)
    {
        telemetry.instant_args("verdict", || {
            vec![("verdict", ArgValue::Str(verdict.to_string()))]
        });
        stats.time = start.elapsed();
        return EngineResult {
            verdict,
            stats,
            certificate,
        };
    }

    let mut abstraction = if config.use_cba {
        Abstraction::initial(design, bad_index)
    } else {
        Abstraction::full(design)
    };
    stats.visible_latches = abstraction.num_visible();
    let mut current = abstraction.abstract_model(design, bad_index);
    // The unrolling cache of the current model; dropped on refinement
    // (the abstract model — and with it every frame encoding — changes).
    let mut cache: Option<CachedUnrolling> = None;

    let finish = |mut stats: EngineStats,
                  verdict: Verdict,
                  certificate: Option<Certificate>,
                  start: Instant| {
        telemetry.instant_args("verdict", || {
            vec![("verdict", ArgValue::Str(verdict.to_string()))]
        });
        stats.time = start.elapsed();
        EngineResult {
            verdict,
            stats,
            certificate,
        }
    };

    for k in 1..=options.max_bound {
        if let Some(reason) = stop_reason() {
            return finish(
                stats,
                Verdict::Inconclusive {
                    reason,
                    bound_reached: k - 1,
                },
                None,
                start,
            );
        }
        let _bound = telemetry.span_args("bound", || vec![("k", ArgValue::U64(k as u64))]);
        probe.set_bound(k);

        // Bounded check at bound k (on the abstract model when CBA is on),
        // interleaved with abstraction refinement.  The reset-state
        // unrolling comes from the per-model cache, so only the new frame
        // is Tseitin-encoded when the bound grows.
        let (instance, proof) = loop {
            let (model, _) = &current;
            // The abstract model carries exactly one bad-state literal —
            // the copy of `bad_index` — at index 0 (passing the concrete
            // index here panicked on every property but the first).
            let instance = cache
                .get_or_insert_with(|| CachedUnrolling::new(model, 0, options.check))
                .instance(k, &mut stats);
            let (result, proof) = solve(
                &instance.cnf,
                &mut stats,
                &budget,
                options.reduce_interval(),
                &probe,
                telemetry,
            );
            match result {
                SolveResult::Unsat => break (instance, proof.expect("unsat result has a proof")),
                SolveResult::Interrupted => {
                    return finish(
                        stats,
                        Verdict::Inconclusive {
                            reason: budget.interrupt_reason(),
                            bound_reached: k - 1,
                        },
                        None,
                        start,
                    );
                }
                SolveResult::Sat => {
                    if !config.use_cba || abstraction.is_complete(design) {
                        // The model is (behaviourally) the design here: CBA
                        // only falsifies through this path once complete,
                        // and its inputs then coincide with the design's.
                        let cert = options
                            .certificates
                            .then(|| {
                                falsification_trace(
                                    model,
                                    0,
                                    k,
                                    options.check,
                                    design.num_inputs(),
                                    options.reduce_interval(),
                                    &mut stats,
                                    &budget,
                                )
                            })
                            .flatten()
                            .map(Certificate::Trace);
                        return finish(stats, Verdict::Falsified { depth: k }, cert, start);
                    }
                    match extend_or_refine(
                        design,
                        bad_index,
                        k,
                        &mut abstraction,
                        options.check,
                        options.reduce_interval(),
                        options.certificates,
                        &mut stats,
                        &budget,
                        telemetry,
                    ) {
                        ExtendOutcome::ConcreteCounterexample(trace) => {
                            let cert = trace.map(Certificate::Trace);
                            return finish(stats, Verdict::Falsified { depth: k }, cert, start);
                        }
                        ExtendOutcome::Cancelled => {
                            return finish(
                                stats,
                                Verdict::Inconclusive {
                                    reason: budget.interrupt_reason(),
                                    bound_reached: k - 1,
                                },
                                None,
                                start,
                            );
                        }
                        ExtendOutcome::Refined => {
                            stats.refinements += 1;
                            stats.visible_latches = abstraction.num_visible();
                            telemetry.instant_args("refine", || {
                                vec![
                                    ("k", ArgValue::U64(k as u64)),
                                    (
                                        "visible_latches",
                                        ArgValue::U64(abstraction.num_visible() as u64),
                                    ),
                                ]
                            });
                            current = abstraction.abstract_model(design, bad_index);
                            cache = None;
                        }
                    }
                }
            }
            if let Some(reason) = stop_reason() {
                return finish(
                    stats,
                    Verdict::Inconclusive {
                        reason,
                        bound_reached: k,
                    },
                    None,
                    start,
                );
            }
        };

        // Interpolation sequence for this bound.
        let (model, model_to_concrete) = &current;
        let mut concrete_to_model = vec![usize::MAX; design.num_latches()];
        for (model_latch, &concrete) in model_to_concrete.iter().enumerate() {
            concrete_to_model[concrete] = model_latch;
        }
        let interpolate =
            telemetry.span_args("interpolate", || vec![("k", ArgValue::U64(k as u64))]);
        let sequence = match compute_sequence(
            model,
            k,
            options.check,
            config.alpha_serial,
            options.reduce_interval(),
            &probe,
            &mut space,
            model_to_concrete,
            &concrete_to_model,
            &instance,
            &proof,
            &mut stats,
            &budget,
            telemetry,
        ) {
            Ok(sequence) => sequence,
            Err(reason) => {
                return finish(
                    stats,
                    Verdict::Inconclusive {
                        reason,
                        bound_reached: k,
                    },
                    None,
                    start,
                );
            }
        };
        interpolate.end();

        // Column conjunctions and fixed-point checks (Fig. 2's inner loop).
        let initial_lits: Vec<aig::Lit> = (0..model.num_latches())
            .map(|i| {
                space
                    .latch(model_to_concrete[i])
                    .xor_complement(!model.init(i))
            })
            .collect();
        let r0 = space.manager_mut().and_many(initial_lits);
        let mut reached = r0;
        for j in 1..=k {
            if columns.len() < j {
                columns.push(aig::Lit::TRUE);
            }
            columns[j - 1] = space.and(columns[j - 1], sequence[j - 1]);
            if space.implies(columns[j - 1], reached) {
                // `reached = R0 ∨ ℐ_1 ∨ … ∨ ℐ_{j-1}` is an inductive
                // invariant here: it contains the initial states, every
                // column excludes the bad states (its bound-j conjunct's B
                // side is exactly the bad target, and the bad cone's latch
                // support is visible in every abstraction), R0's visible
                // reset values are bad-free by the depth-0 check, and the
                // image of each disjunct lands in the next column — which
                // the fixpoint folds back into `reached`.
                let cert = options.certificates.then(|| {
                    let _emit = telemetry.span("certificate.emit");
                    let identity: Vec<usize> = (0..design.num_latches()).collect();
                    Certificate::Invariant(InvariantCert {
                        num_latches: design.num_latches(),
                        clauses: Vec::new(),
                        cone: Some(InvariantCone::from_cone(
                            space.manager(),
                            reached,
                            design.num_latches(),
                            &identity,
                        )),
                    })
                });
                return finish(stats, Verdict::Proved { k_fp: k, j_fp: j }, cert, start);
            }
            reached = space.or(reached, columns[j - 1]);
        }
    }

    finish(
        stats,
        Verdict::Inconclusive {
            reason: crate::types::StopReason::BoundExhausted,
            bound_reached: options.max_bound,
        },
        None,
        start,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::builder::{latch_word, word_equals_const, word_increment, word_mux};

    fn modular_counter(width: usize, modulus: u64, bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, bits) = latch_word(&mut aig, width, 0);
        let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
        let inc = word_increment(&mut aig, &bits, aig::Lit::TRUE);
        let zero = aig::builder::word_const(width, 0);
        let next = word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &bits, bad_at);
        aig.add_bad(bad);
        aig
    }

    fn gated_counter(width: usize) -> Aig {
        let mut aig = Aig::new();
        let en = aig::Lit::positive(aig.add_input());
        let (ids, bits) = latch_word(&mut aig, width, 0);
        let next = word_increment(&mut aig, &bits, en);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &bits, (1 << width) - 1);
        aig.add_bad(bad);
        aig
    }

    /// The cached unrolling must reproduce the scratch instance *exactly*:
    /// same clauses in the same order with the same partition labels and
    /// variable numbering — that is what keeps proofs, interpolants and
    /// therefore every reported `k_fp`/`j_fp` bit-identical to the
    /// pre-cache engine.
    #[test]
    fn cached_instances_are_bit_identical_to_scratch_builds() {
        let designs = [modular_counter(3, 6, 7), gated_counter(3)];
        for check in [BmcCheck::Exact, BmcCheck::ExactAssume] {
            for design in &designs {
                let mut cache = CachedUnrolling::new(design, 0, check);
                let mut stats = EngineStats::default();
                for k in 1..=6usize {
                    let cached = cache.instance(k, &mut stats);
                    let scratch = build_instance(design, 0, k, 0, k, check, InitKind::Reset);
                    assert_eq!(
                        cached.cnf, scratch.cnf,
                        "{check:?} bound {k}: clauses must match exactly"
                    );
                    assert_eq!(
                        cached.frame_latches, scratch.frame_latches,
                        "{check:?} bound {k}: frame maps must match exactly"
                    );
                }
            }
        }
    }

    /// Re-requesting the same bound (the CBA refinement loop does this)
    /// must not grow the cache or change the instance.
    #[test]
    fn repeated_instances_at_one_bound_are_stable() {
        let design = modular_counter(3, 6, 7);
        for check in [BmcCheck::Exact, BmcCheck::ExactAssume] {
            let mut cache = CachedUnrolling::new(&design, 0, check);
            let mut stats = EngineStats::default();
            let first = cache.instance(4, &mut stats);
            let clauses_after_first = cache.unroller.num_clauses();
            let second = cache.instance(4, &mut stats);
            assert_eq!(cache.unroller.num_clauses(), clauses_after_first);
            assert_eq!(first.cnf, second.cnf, "{check:?}");
        }
    }

    /// Growing bound-by-bound and jumping straight to `k` (a fresh cache
    /// after a refinement) must produce the same instance.
    #[test]
    fn incremental_growth_matches_fresh_growth() {
        let design = gated_counter(3);
        for check in [BmcCheck::Exact, BmcCheck::ExactAssume] {
            let mut grown = CachedUnrolling::new(&design, 0, check);
            let mut stats = EngineStats::default();
            for k in 1..=5usize {
                let _ = grown.instance(k, &mut stats);
            }
            let mut fresh = CachedUnrolling::new(&design, 0, check);
            let a = grown.instance(5, &mut stats);
            let b = fresh.instance(5, &mut stats);
            assert_eq!(a.cnf, b.cnf, "{check:?}");
        }
    }
}
