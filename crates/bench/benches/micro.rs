//! Micro-benchmarks of the substrates: SAT solving with proof logging,
//! interpolant extraction and BDD reachability.

use criterion::{criterion_group, criterion_main, Criterion};
use itp::InterpolationContext;
use sat::{SolveResult, Solver};

fn pigeonhole_cnf(holes: usize) -> cnf::Cnf {
    let pigeons = holes + 1;
    let mut b = cnf::CnfBuilder::new();
    let var = |p: usize, h: usize| cnf::Var::new((p * holes + h) as u32);
    for _ in 0..pigeons * holes {
        b.new_var();
    }
    b.set_partition(1);
    for p in 0..pigeons {
        b.add_clause((0..holes).map(|h| cnf::Lit::positive(var(p, h))));
    }
    b.set_partition(2);
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                b.add_clause([
                    cnf::Lit::negative(var(p1, h)),
                    cnf::Lit::negative(var(p2, h)),
                ]);
            }
        }
    }
    b.into_cnf()
}

fn sat_with_proof(c: &mut Criterion) {
    let cnf = pigeonhole_cnf(6);
    c.bench_function("sat/pigeonhole6_refutation", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            solver.add_cnf(&cnf);
            assert_eq!(solver.solve(), SolveResult::Unsat);
            solver.proof().expect("proof")
        })
    });
}

fn interpolant_extraction(c: &mut Criterion) {
    let cnf = pigeonhole_cnf(5);
    let mut solver = Solver::new();
    solver.add_cnf(&cnf);
    assert_eq!(solver.solve(), SolveResult::Unsat);
    let proof = solver.proof().expect("proof");
    c.bench_function("itp/pigeonhole5_interpolant", |b| {
        b.iter(|| {
            let ctx = InterpolationContext::new(&proof).expect("context");
            let mut mgr = aig::Aig::new();
            let inputs: Vec<aig::Lit> = (0..cnf.num_vars)
                .map(|_| aig::Lit::positive(mgr.add_input()))
                .collect();
            ctx.interpolant(1, &mut mgr, &|_, v| inputs[v.index() as usize])
                .expect("interpolant")
        })
    });
}

fn bdd_reachability(c: &mut Criterion) {
    let design = workloads::counter::modular(6, 50, 64);
    c.bench_function("bdd/counter6_diameters", |b| {
        b.iter(|| bdd::reach::analyze(&design, 0, 1_000_000))
    });
}

criterion_group!(
    benches,
    sat_with_proof,
    interpolant_extraction,
    bdd_reachability
);
criterion_main!(benches);
