//! Resource governance and deterministic fault injection for the SAT
//! layer.
//!
//! Two small, shareable handles live here:
//!
//! * [`MemoryBudget`] — an aggregate byte budget shared by every solver
//!   of a run (clones share the same counters, exactly like the
//!   interrupt flag).  Each [`Solver`](crate::Solver) re-estimates its
//!   own footprint at the interrupt-check cadence and folds the delta
//!   into the shared total; once the total exceeds the limit the solver
//!   answers [`SolveResult::Interrupted`](crate::SolveResult) and the
//!   budget records a *hit*, which is how the engine layer tells a
//!   memory stop apart from a timeout even after the tripping solver has
//!   been dropped (dropping releases its registered bytes, but hits are
//!   monotone).
//! * [`FaultPlan`] — a deterministic, fire-exactly-once fault injector
//!   for the chaos test suite: panic, spurious interrupt or simulated
//!   allocation failure at the Nth conflict, Nth clause allocation or
//!   Nth engine phase.  Firing exactly once (globally, across every
//!   clone) is what keeps faulted runs deterministic: a worker that dies
//!   to an injected panic can be re-run sequentially and the plan will
//!   not re-fire.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// An aggregate memory budget shared across solvers; see the module
/// docs.  Clones share the accounting, so one budget handed to every
/// entrant of a portfolio (or every frame solver of a multi-property
/// run) governs their *combined* footprint.
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    limit: u64,
    used: Arc<AtomicU64>,
    hits: Arc<AtomicU64>,
}

impl MemoryBudget {
    /// A budget of `limit` bytes across every solver sharing this handle.
    pub fn new(limit: u64) -> MemoryBudget {
        MemoryBudget {
            limit,
            used: Arc::new(AtomicU64::new(0)),
            hits: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Current aggregate estimate across every registered solver.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Acquire)
    }

    /// Number of times a solver observed the budget exceeded (monotone —
    /// it never decreases, even after the offending solver is dropped).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Acquire)
    }

    /// Replaces a solver's registered contribution (`*registered` bytes)
    /// with `now` bytes in the shared total.
    pub fn update(&self, registered: &mut u64, now: u64) {
        if now >= *registered {
            self.used.fetch_add(now - *registered, Ordering::AcqRel);
        } else {
            self.used.fetch_sub(*registered - now, Ordering::AcqRel);
        }
        *registered = now;
    }

    /// Removes a solver's registered contribution from the shared total
    /// (called when the solver is dropped or the budget uninstalled).
    pub fn release(&self, registered: &mut u64) {
        self.update(registered, 0);
    }

    /// `true` once the aggregate estimate exceeds the limit.
    pub fn exceeded(&self) -> bool {
        self.used() > self.limit
    }

    /// Records that a solver observed the budget exceeded and stopped.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::AcqRel);
    }
}

/// Budgets compare by their configured limit; the live accounting is
/// run state, not configuration.
impl PartialEq for MemoryBudget {
    fn eq(&self, other: &MemoryBudget) -> bool {
        self.limit == other.limit
    }
}
impl Eq for MemoryBudget {}

/// What an injected fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic (unwinds into the engine's containment boundary).
    Panic,
    /// A spurious interrupt: the solve answers `Interrupted` with no
    /// budget actually exhausted.
    Interrupt,
    /// A simulated allocation failure (unwinds like a panic, with an
    /// allocation-failure message).
    AllocFail,
}

/// Where an injected fault counts down and fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The Nth conflict of any governed solver.
    Conflict,
    /// The Nth clause allocation of any governed solver.
    Alloc,
    /// The Nth engine phase (a between-bounds stop check).
    Phase,
}

#[derive(Debug)]
struct FaultInner {
    site: FaultSite,
    kind: FaultKind,
    at: u64,
    counter: AtomicU64,
    fired: AtomicBool,
}

/// A deterministic fault injector; see the module docs.  The default
/// plan is unarmed and free (one `Option` check per tick).  Clones
/// share the countdown and the fired latch, so a plan threaded through
/// `Options` clones fires exactly once per *run*, not once per solver.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    inner: Option<Arc<FaultInner>>,
}

/// `splitmix64` — the classic 64-bit mixer, used to derive the fault
/// configuration from a seed deterministically.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The unarmed plan: every tick is a cheap no-op.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arms a fault of `kind` at the `at`-th tick of `site` (1-based;
    /// `at = 1` fires on the first tick).
    pub fn inject(site: FaultSite, kind: FaultKind, at: u64) -> FaultPlan {
        FaultPlan {
            inner: Some(Arc::new(FaultInner {
                site,
                kind,
                at: at.max(1),
                counter: AtomicU64::new(0),
                fired: AtomicBool::new(false),
            })),
        }
    }

    /// Derives a fault configuration deterministically from `seed` —
    /// the chaos suite's way of sweeping the fault space.
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut state = seed;
        let x = splitmix64(&mut state);
        let site = match x % 3 {
            0 => FaultSite::Conflict,
            1 => FaultSite::Alloc,
            _ => FaultSite::Phase,
        };
        let y = splitmix64(&mut state);
        let kind = match y % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Interrupt,
            _ => FaultKind::AllocFail,
        };
        let at = 1 + splitmix64(&mut state) % 40;
        FaultPlan::inject(site, kind, at)
    }

    /// `true` when a fault is configured (fired or not).
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The configured fault kind, if any.
    pub fn kind(&self) -> Option<FaultKind> {
        self.inner.as_ref().map(|inner| inner.kind)
    }

    /// The configured fault site, if any.
    pub fn site(&self) -> Option<FaultSite> {
        self.inner.as_ref().map(|inner| inner.site)
    }

    /// `true` once the fault has fired (anywhere, on any clone).
    pub fn fired(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.fired.load(Ordering::Acquire))
    }

    /// Counts one tick of `site`; returns the fault to inject when this
    /// tick is the one the plan is armed for.  Fires exactly once: later
    /// ticks (on this or any clone) return `None` forever.
    pub fn tick(&self, site: FaultSite) -> Option<FaultKind> {
        let inner = self.inner.as_ref()?;
        if inner.site != site || inner.fired.load(Ordering::Acquire) {
            return None;
        }
        let count = inner.counter.fetch_add(1, Ordering::AcqRel) + 1;
        if count >= inner.at && !inner.fired.swap(true, Ordering::AcqRel) {
            return Some(inner.kind);
        }
        None
    }
}

/// Plans compare by configuration; the countdown and fired latch are
/// run state.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &FaultPlan) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => a.site == b.site && a.kind == b.kind && a.at == b.at,
            _ => false,
        }
    }
}
impl Eq for FaultPlan {}

/// A solver's registered byte contribution to a shared [`MemoryBudget`].
///
/// Cloning a solver must *not* clone the registration — the clone never
/// added its bytes to the shared total, so its eventual drop must not
/// subtract them either.  The newtype's `Clone` therefore resets to 0;
/// the clone re-registers at its own next check.
#[derive(Debug, Default)]
pub(crate) struct Registered(pub u64);

impl Clone for Registered {
    fn clone(&self) -> Registered {
        Registered(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_accounting_is_shared_and_releasable() {
        let budget = MemoryBudget::new(1000);
        let clone = budget.clone();
        let mut a = 0u64;
        let mut b = 0u64;
        budget.update(&mut a, 600);
        clone.update(&mut b, 300);
        assert_eq!(budget.used(), 900);
        assert!(!budget.exceeded());
        clone.update(&mut b, 500);
        assert_eq!(budget.used(), 1100);
        assert!(budget.exceeded(), "aggregate over the limit");
        budget.release(&mut a);
        assert_eq!(a, 0);
        assert_eq!(clone.used(), 500);
        assert!(!clone.exceeded());
    }

    #[test]
    fn hits_are_monotone_and_shared() {
        let budget = MemoryBudget::new(10);
        let clone = budget.clone();
        assert_eq!(budget.hits(), 0);
        clone.record_hit();
        clone.record_hit();
        assert_eq!(budget.hits(), 2);
        let mut reg = 0;
        budget.update(&mut reg, 100);
        budget.release(&mut reg);
        assert_eq!(budget.hits(), 2, "releasing never erases hits");
    }

    #[test]
    fn fault_plans_fire_exactly_once() {
        let plan = FaultPlan::inject(FaultSite::Conflict, FaultKind::Panic, 3);
        let clone = plan.clone();
        assert!(plan.is_armed() && !plan.fired());
        assert_eq!(plan.tick(FaultSite::Conflict), None);
        assert_eq!(plan.tick(FaultSite::Alloc), None, "wrong site never fires");
        assert_eq!(clone.tick(FaultSite::Conflict), None);
        assert_eq!(
            plan.tick(FaultSite::Conflict),
            Some(FaultKind::Panic),
            "third conflict tick fires"
        );
        assert!(plan.fired() && clone.fired(), "clones share the latch");
        for _ in 0..10 {
            assert_eq!(clone.tick(FaultSite::Conflict), None, "never re-fires");
        }
    }

    #[test]
    fn unarmed_plans_are_inert() {
        let plan = FaultPlan::none();
        assert!(!plan.is_armed());
        assert!(!plan.fired());
        for site in [FaultSite::Conflict, FaultSite::Alloc, FaultSite::Phase] {
            assert_eq!(plan.tick(site), None);
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed);
            let b = FaultPlan::seeded(seed);
            assert!(a.is_armed());
            assert_eq!(a, b, "seed {seed} must derive one configuration");
        }
        // The derivation must cover every site and kind across a small
        // seed range (otherwise the chaos sweep would silently skip a
        // whole fault class).
        let sites: std::collections::HashSet<_> = (0..64u64)
            .filter_map(|s| FaultPlan::seeded(s).site())
            .collect();
        let kinds: std::collections::HashSet<_> = (0..64u64)
            .filter_map(|s| FaultPlan::seeded(s).kind())
            .collect();
        assert_eq!(sites.len(), 3, "{sites:?}");
        assert_eq!(kinds.len(), 3, "{kinds:?}");
    }

    #[test]
    fn registered_contributions_do_not_clone() {
        let reg = Registered(512);
        assert_eq!(reg.clone().0, 0, "clones must re-register from zero");
        assert_eq!(reg.0, 512);
    }
}
