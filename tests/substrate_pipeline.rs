//! Integration tests of the substrate pipeline (AIG → CNF → SAT → proof →
//! interpolant), including property-based tests with `proptest`.

use itpseq::cnf::{BmcCheck, CnfBuilder, Lit, Var};
use itpseq::itp::InterpolationContext;
use itpseq::sat::{IncrementalSolver, SolveResult, Solver};
use proptest::prelude::*;

/// The BMC formulations must order themselves by strength on any design:
/// assume-k SAT ⇒ exact-k SAT ⇒ bound-k SAT.
#[test]
fn bmc_formulation_strength_ordering() {
    let designs = [
        itpseq::workloads::counter::modular(3, 6, 4),
        itpseq::workloads::counter::gated(3, 7, 5),
        itpseq::workloads::token_ring::ring(4, true),
        itpseq::workloads::fifo::controller(2, true),
    ];
    for design in &designs {
        for k in 1..=8usize {
            let sat_of = |check: BmcCheck| {
                let inst = itpseq::cnf::bmc::build(design, 0, k, check);
                let mut solver = Solver::new();
                solver.add_cnf(&inst.cnf);
                solver.solve() == SolveResult::Sat
            };
            let assume = sat_of(BmcCheck::ExactAssume);
            let exact = sat_of(BmcCheck::Exact);
            let bound = sat_of(BmcCheck::Bound);
            assert!(!assume || exact, "{} k={k}", design.name());
            assert!(!exact || bound, "{} k={k}", design.name());
        }
    }
}

/// End-to-end pipeline: refute a BMC instance and check that the extracted
/// interpolation sequence elements really are state over-approximations
/// (the initial state is always contained in `I_1` after one step, and no
/// element intersects the bad states at its own cut).
#[test]
fn interpolation_sequence_elements_over_approximate_reachable_states() {
    let design = itpseq::workloads::counter::modular(3, 6, 7);
    let k = 4usize;
    let inst = itpseq::cnf::bmc::build(&design, 0, k, BmcCheck::Exact);
    let mut solver = Solver::new();
    solver.add_cnf(&inst.cnf);
    assert_eq!(solver.solve(), SolveResult::Unsat);
    let proof = solver.proof().expect("refutation proof");
    let ctx = InterpolationContext::new(&proof).expect("context");

    // Interpolants over the frame-j latch variables, mapped onto a fresh
    // combinational manager whose inputs are the design latches.
    let mut mgr = itpseq::aig::Aig::new();
    let latch_inputs: Vec<itpseq::aig::Lit> = (0..design.num_latches())
        .map(|_| itpseq::aig::Lit::positive(mgr.add_input()))
        .collect();
    let mut var_to_latch = std::collections::HashMap::new();
    for frame in &inst.frame_latches {
        for (latch, lit) in frame.iter().enumerate() {
            var_to_latch.insert(lit.var(), latch);
        }
    }
    let cuts: Vec<u32> = (1..=k as u32).collect();
    let seq = ctx
        .sequence_for_cuts(&cuts, &mut mgr, &|_, v| latch_inputs[var_to_latch[&v]])
        .expect("sequence");

    // Concrete reachable states at depth j (the counter value is j for
    // j < 6) must satisfy I_j; the bad state (value 7) must violate I_k.
    for (idx, &itp) in seq.iter().enumerate() {
        let depth = idx + 1;
        let value = (depth as u64) % 6;
        let state: Vec<bool> = (0..3).map(|b| (value >> b) & 1 == 1).collect();
        assert!(
            mgr.eval(itp, &state, &[]),
            "I_{depth} must contain the concrete state reached at depth {depth}"
        );
    }
    let bad_state = vec![true, true, true]; // value 7
    let last = *seq.last().expect("non-empty sequence");
    assert!(
        !mgr.eval(last, &bad_state, &[]),
        "I_k must exclude the bad states"
    );
}

/// The incremental pipeline the PDR engine is built on: a two-frame
/// transition template queried under assumptions, with temporary `¬cube`
/// clauses retired between queries.
#[test]
fn incremental_one_step_queries_match_reachability() {
    // 2-bit free-running counter; one-step successors of state `n` are
    // exactly `n + 1 (mod 4)`.
    let design = itpseq::workloads::counter::modular(2, 4, 3);
    let mut unroller = itpseq::cnf::Unroller::new(&design);
    unroller.add_frame();
    let latch0 = unroller.latch_lits(0);
    let latch1 = unroller.latch_lits(1);
    let mut solver = IncrementalSolver::with_base(&unroller.into_cnf());

    let state_lits = |vars: &[Lit], value: usize| -> Vec<Lit> {
        (0..2)
            .map(|bit| {
                if value >> bit & 1 == 1 {
                    vars[bit]
                } else {
                    !vars[bit]
                }
            })
            .collect()
    };

    for from in 0..4usize {
        for to in 0..4usize {
            let mut assumptions = state_lits(&latch0, from);
            assumptions.extend(state_lits(&latch1, to));
            let expected = (from + 1) % 4 == to;
            assert_eq!(
                solver.solve(&assumptions) == SolveResult::Sat,
                expected,
                "{from} -> {to}"
            );
        }
    }

    // A retirable clause blocking state 2 at frame 1 rules out 1 -> 2
    // while it is live and restores it once retired.
    let blocking: Vec<Lit> = state_lits(&latch1, 2).into_iter().map(|l| !l).collect();
    let guard = solver.add_retirable_clause(blocking);
    let mut assumptions = state_lits(&latch0, 1);
    assumptions.extend(state_lits(&latch1, 2));
    assert_eq!(solver.solve(&assumptions), SolveResult::Unsat);
    let core = solver.assumption_core();
    assert!(core.iter().all(|l| assumptions.contains(l)));
    solver.retire(guard);
    assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The solver agrees with a brute-force oracle on random small CNFs and
    /// produces checkable proofs on the unsatisfiable ones.
    #[test]
    fn solver_matches_brute_force_on_random_cnf(
        clauses in proptest::collection::vec(
            proptest::collection::vec((0u32..6, proptest::bool::ANY), 1..4),
            1..24,
        )
    ) {
        let mut builder = CnfBuilder::new();
        for _ in 0..6 {
            builder.new_var();
        }
        builder.set_partition(1);
        for clause in &clauses {
            builder.add_clause(clause.iter().map(|&(v, neg)| Lit::new(Var::new(v), neg)));
        }
        let cnf = builder.into_cnf();
        let expected = (0..(1u64 << cnf.num_vars)).any(|bits| {
            let assignment: Vec<bool> = (0..cnf.num_vars).map(|i| (bits >> i) & 1 == 1).collect();
            cnf.evaluate(&assignment)
        });
        let mut solver = Solver::new();
        solver.add_cnf(&cnf);
        let got = solver.solve() == SolveResult::Sat;
        prop_assert_eq!(got, expected);
        if got {
            prop_assert!(cnf.evaluate(&solver.model()));
        } else {
            let proof = solver.proof().expect("proof");
            prop_assert!(proof.check().is_ok());
        }
    }

    /// Counter workloads: the interpolation and PDR verdicts both match
    /// the arithmetic truth for arbitrary parameters.
    #[test]
    fn counter_verdicts_match_arithmetic(modulus in 2u64..10, bad_at in 0u64..12) {
        let design = itpseq::workloads::counter::modular(4, modulus, bad_at);
        for engine in [itpseq::mc::Engine::SerialItpSeq, itpseq::mc::Engine::Pdr] {
            let result = engine.verify(&design, 0, &itpseq::mc::Options::default());
            if bad_at < modulus {
                prop_assert_eq!(
                    result.verdict,
                    itpseq::mc::Verdict::Falsified { depth: bad_at as usize }
                );
            } else {
                prop_assert!(result.verdict.is_proved(), "{}: {}", engine.name(), result.verdict);
            }
        }
    }
}
