//! Offline stand-in for the subset of the `proptest` 1.x API used by the
//! workspace's integration tests: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, [`test_runner::Config`] (`ProptestConfig`), integer
//! range strategies, tuple strategies, [`bool::ANY`] and
//! [`collection::vec`].
//!
//! The build environment has no access to crates.io.  The shim samples each
//! strategy with a deterministic per-case SplitMix64 stream and reports the
//! first failing case's inputs; it does not shrink.

use std::ops::Range;

/// Deterministic sample stream handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the stream for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty strategy range");
        self.next_u64() % bound
    }
}

/// A source of generated values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing unbiased booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Unbiased boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors of another strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration and failure types, mirroring
/// `proptest::test_runner`.
pub mod test_runner {
    use std::fmt;

    /// Stand-in for `proptest::test_runner::Config` (`ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases each property test runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// Returns a configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// A failed property assertion.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Everything the tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Fails the surrounding property when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the surrounding property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Declares property tests: each `arg in strategy` binding is sampled per
/// case and the body runs with `prop_assert!`-style early returns.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $config; $($rest)*);
    };
    (@with_config $config:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strategy:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                // Distinct deterministic stream per test and case: FNV-1a
                // over the test name, mixed with the case index.
                let seed = {
                    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
                    for byte in stringify!($name).bytes() {
                        hash = (hash ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
                    }
                    hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                };
                let mut rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(error) = outcome {
                    panic!(
                        "proptest case {case} failed: {error}\n  inputs: {:?}",
                        ($(&$arg,)+)
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sampled_ranges_stay_in_bounds(value in 3u32..17) {
            prop_assert!((3..17).contains(&value));
        }

        #[test]
        fn vectors_respect_size_bounds(
            values in crate::collection::vec((0u32..6, crate::bool::ANY), 1..4)
        ) {
            prop_assert!((1..4).contains(&values.len()));
            for (v, _) in &values {
                prop_assert!(*v < 6);
            }
        }
    }

    #[test]
    fn prop_assert_eq_reports_both_sides() {
        let failing = || -> Result<(), crate::test_runner::TestCaseError> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        };
        let message = failing().unwrap_err().to_string();
        assert!(message.contains("left: 2"), "{message}");
        assert!(message.contains("right: 3"), "{message}");
    }
}
