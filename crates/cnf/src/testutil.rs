//! Test-only naive DPLL satisfiability checker.
//!
//! Unit tests in this crate need an oracle to validate encodings without
//! depending on the real CDCL solver crate (which would create a dependency
//! cycle).  This extremely small DPLL with unit propagation handles the few
//! dozen variables that the encoding tests produce.

use crate::{Cnf, Lit};

/// Returns `true` when the formula is satisfiable.
pub(crate) fn dpll_sat(cnf: &Cnf) -> bool {
    let clauses: Vec<Vec<Lit>> = cnf.clauses.iter().map(|c| c.lits.clone()).collect();
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars as usize];
    dpll(&clauses, &mut assignment)
}

fn dpll(clauses: &[Vec<Lit>], assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to a fixed point.
    let mut trail: Vec<u32> = Vec::new();
    loop {
        let mut propagated = false;
        for clause in clauses {
            let mut unassigned = None;
            let mut count_unassigned = 0;
            let mut satisfied = false;
            for &lit in clause {
                match assignment[lit.var().index() as usize] {
                    None => {
                        count_unassigned += 1;
                        unassigned = Some(lit);
                    }
                    Some(v) if v != lit.is_negative() => {
                        satisfied = true;
                        break;
                    }
                    _ => {}
                }
            }
            if satisfied {
                continue;
            }
            if count_unassigned == 0 {
                // Conflict: undo and fail.
                for v in trail {
                    assignment[v as usize] = None;
                }
                return false;
            }
            if count_unassigned == 1 {
                let lit = unassigned.expect("one unassigned literal");
                assignment[lit.var().index() as usize] = Some(!lit.is_negative());
                trail.push(lit.var().index());
                propagated = true;
            }
        }
        if !propagated {
            break;
        }
    }
    // Pick an unassigned variable and branch.
    match assignment.iter().position(|a| a.is_none()) {
        None => true,
        Some(var) => {
            for value in [true, false] {
                assignment[var] = Some(value);
                if dpll(clauses, assignment) {
                    return true;
                }
                assignment[var] = None;
            }
            for v in trail {
                assignment[v as usize] = None;
            }
            false
        }
    }
}
