//! Cube generalization: assumption-core shrinking plus CTG-style down.
//!
//! A blocked obligation yields a core-shrunk cube whose negation is a
//! valid lemma — but usually not the *strongest* one.  This module drops
//! further literals MIC-style: each candidate (cube minus one literal) is
//! re-checked for relative induction, and when the check fails on a
//! *counterexample to generalization* (a predecessor state that is itself
//! unreachable), the CTG is blocked one frame down first and the
//! candidate retried (Hassan, Bradley, Somenzi — *Better generalization
//! in IC3*, FMCAD 2013).
//!
//! With worker threads available ([`Options::threads`](crate::Options)
//! above 1) and a cube large enough to amortise solver cloning, the
//! engine switches to a *parallel down*: every single-literal drop of the
//! current cube is screened concurrently on cloned frame solvers, the
//! first (lowest-index) blocked candidate is adopted, and the round
//! repeats until no drop survives.  Screening has no side effects on the
//! frames, so the result depends only on the cube — never on scheduling
//! or thread count.  The parallel mode trades the sequential mode's CTG
//! strengthening for wall-clock speed; both produce sound lemmas.

use super::frames::Cube;
use super::{Pdr, Query, PAR_MIN_ITEMS};

/// Counterexamples-to-generalization handled per candidate before giving
/// up on a literal drop.
const MAX_CTGS: usize = 3;

/// Strengthens the lemma `¬seed` (already blocked at `frame`) by dropping
/// as many literals as relative induction allows.
pub(super) fn generalize(pdr: &mut Pdr<'_>, frame: usize, seed: Cube) -> Cube {
    if pdr.threads > 1 && seed.len() >= PAR_MIN_ITEMS {
        parallel_down(pdr, frame, seed)
    } else {
        sequential_down(pdr, frame, seed)
    }
}

/// The classic sequential MIC loop with CTG handling.
fn sequential_down(pdr: &mut Pdr<'_>, frame: usize, seed: Cube) -> Cube {
    let mut cube = seed;
    let mut index = 0;
    while index < cube.len() && cube.len() > 1 {
        if pdr.stopped() {
            break;
        }
        let candidate = cube.without(index);
        match try_block(pdr, frame, candidate) {
            // The candidate (or a sub-cube of it) is blocked too: adopt it
            // and retry the same position, which now holds the next
            // literal.
            Some(shrunk) => cube = shrunk,
            None => index += 1,
        }
    }
    cube
}

/// Screens every single-literal drop of the cube in parallel and adopts
/// the first surviving candidate, until the cube is minimal.
///
/// Each adopted cube is a strict sub-cube of its predecessor, so the loop
/// terminates after at most `seed.len()` rounds.
fn parallel_down(pdr: &mut Pdr<'_>, frame: usize, seed: Cube) -> Cube {
    let mut cube = seed;
    while cube.len() > 1 {
        if pdr.stopped() {
            break;
        }
        let candidates: Vec<Cube> = (0..cube.len()).map(|index| cube.without(index)).collect();
        let screened = pdr.screen_drop_candidates(frame, &candidates);
        match screened.into_iter().flatten().next() {
            Some(shrunk) => cube = shrunk,
            None => break,
        }
    }
    cube
}

/// Attempts to show `cube` unreachable relative to `F_{frame-1}`,
/// dispatching up to [`MAX_CTGS`] counterexamples-to-generalization along
/// the way.  Returns the core-shrunk blocked cube on success.
fn try_block(pdr: &mut Pdr<'_>, frame: usize, cube: Cube) -> Option<Cube> {
    let mut ctgs = 0;
    loop {
        if cube.is_empty() || cube.contains_state(&pdr.init) || pdr.stopped() {
            return None;
        }
        match pdr.relative_induction(frame, &cube) {
            Query::Blocked(core) => return Some(core),
            Query::Cancelled => return None,
            Query::Predecessor(ctg, _) => {
                // The candidate has a predecessor.  If that predecessor is
                // itself unreachable one frame down, learn a lemma against
                // it and retry; otherwise the drop fails.
                if ctgs >= MAX_CTGS || frame < 2 || ctg.contains_state(&pdr.init) {
                    return None;
                }
                match pdr.relative_induction(frame - 1, &ctg) {
                    Query::Blocked(ctg_core) => {
                        ctgs += 1;
                        let at = push_lemma_up(pdr, frame - 1, &ctg_core);
                        pdr.add_lemma(at, ctg_core);
                    }
                    Query::Predecessor(..) | Query::Cancelled => return None,
                }
            }
        }
    }
}

/// Returns the highest frame (at least `from`, at most the frontier) at
/// which `cube` is still relatively inductive.
fn push_lemma_up(pdr: &mut Pdr<'_>, from: usize, cube: &Cube) -> usize {
    let mut at = from;
    while at < pdr.frames.level() {
        match pdr.relative_induction(at + 1, cube) {
            Query::Blocked(_) => at += 1,
            Query::Predecessor(..) | Query::Cancelled => break,
        }
    }
    at
}
