//! The CDCL search engine.
//!
//! The hot paths run on a flat [`ClauseArena`]: watcher lists carry
//! *blocker literals* (a cached literal whose truth lets propagation skip
//! the clause without touching its memory) and a binary-clause fast path
//! (the watcher itself holds the other literal, so two-literal clauses
//! propagate without any clause access at all).  Learned clauses are
//! tagged with their LBD ("glue") at learn time, shrunk by recursive
//! minimization before backjumping, and periodically retired by a
//! proof-aware database reduction — clauses referenced by recorded
//! resolution [`Chain`]s are pinned while proof logging is on, so
//! interpolant extraction keeps working after any number of reductions.

use crate::arena::{ClauseArena, ClauseRef, NO_PROOF_ID};
use crate::govern::{FaultKind, FaultPlan, FaultSite, MemoryBudget, Registered};
use crate::luby::luby;
use crate::proof::{Chain, ClauseOrigin, Proof, ProofClause};
use cnf::{Cnf, Lit, Var};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Default conflict spacing of [`ProgressProbe`] samples.
pub const DEFAULT_PROBE_INTERVAL: u64 = 2048;

/// A periodic observer of the search: the callback receives a
/// [`SolverStats`] snapshot every `interval` conflicts.
///
/// The probe keeps the solver free of any dependency on the telemetry
/// layer — the model checker installs a closure that republishes the
/// snapshots as trace events.  The callback runs on the searching thread
/// and must be cheap; it fires at conflict granularity, never from the
/// propagation inner loop.  Clones of a solver share the probe (it is an
/// `Arc`), mirroring how they share the interrupt flag.
#[derive(Clone)]
pub struct ProgressProbe {
    callback: Arc<dyn Fn(&SolverStats) + Send + Sync>,
    interval: u64,
}

impl ProgressProbe {
    /// Wraps `callback` to fire every `interval` conflicts (an interval
    /// of 0 is promoted to 1).
    pub fn new(
        interval: u64,
        callback: impl Fn(&SolverStats) + Send + Sync + 'static,
    ) -> ProgressProbe {
        ProgressProbe {
            callback: Arc::new(callback),
            interval: interval.max(1),
        }
    }

    /// The conflict spacing between samples.
    pub fn interval(&self) -> u64 {
        self.interval
    }
}

impl fmt::Debug for ProgressProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProgressProbe(every {} conflicts)", self.interval)
    }
}

/// Result of a satisfiability query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment exists; read it with [`Solver::model`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The search was stopped before an answer was found — either the
    /// shared interrupt flag ([`Solver::set_interrupt`]) was raised or the
    /// per-call conflict budget ([`Solver::set_conflict_limit`]) ran out.
    ///
    /// The solver stays usable: a later call without the interruption can
    /// still answer `Sat` or `Unsat`.  Models, cores and proofs are *not*
    /// meaningful after an interrupted call.
    Interrupted,
}

/// Aggregate search statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses.
    pub learned: u64,
    /// Learned clauses deleted — by the periodic LBD-driven database
    /// reduction and by the root-satisfied sweep
    /// ([`Solver::remove_root_satisfied`]).
    pub learned_deleted: u64,
    /// Literals removed from learned clauses by recursive minimization
    /// before backjumping.
    pub minimized_literals: u64,
    /// Learned-clause database reduction passes performed.
    pub db_reductions: u64,
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, other: SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learned += other.learned;
        self.learned_deleted += other.learned_deleted;
        self.minimized_literals += other.minimized_literals;
        self.db_reductions += other.db_reductions;
    }
}

impl std::ops::Sub for SolverStats {
    type Output = SolverStats;

    /// Per-query deltas: `after - before` of a monotonically growing
    /// counter snapshot.
    fn sub(self, other: SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts - other.conflicts,
            decisions: self.decisions - other.decisions,
            propagations: self.propagations - other.propagations,
            restarts: self.restarts - other.restarts,
            learned: self.learned - other.learned,
            learned_deleted: self.learned_deleted - other.learned_deleted,
            minimized_literals: self.minimized_literals - other.minimized_literals,
            db_reductions: self.db_reductions - other.db_reductions,
        }
    }
}

/// How many conflicts-or-decisions pass between two polls of the shared
/// interrupt flag during search.
pub const INTERRUPT_CHECK_INTERVAL: u64 = 64;

/// Live learned clauses that trigger the first database reduction (the
/// default argument behind [`Solver::set_reduce_interval`]).  The
/// reproduction's workloads issue thousands of *small* incremental queries
/// rather than one giant search, so the schedule starts far earlier than
/// a standalone solver's would.
pub const DEFAULT_REDUCE_FIRST: u64 = 30;

/// Growth of the reduction trigger after each pass.
const REDUCE_INC: u64 = 100;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

/// One watch-list entry.  `blocker` is some other literal of the clause:
/// if it is already true the clause is satisfied and propagation skips it
/// without touching clause memory.  For `binary` clauses the blocker *is*
/// the only other literal, so the clause body is never read at all.
#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
    binary: bool,
}

#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    activity: f64,
    var: Var,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.activity == other.activity && self.var == other.var
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.activity
            .partial_cmp(&other.activity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.var.cmp(&other.var))
    }
}

/// The resolution chains recorded while proof logging is on, indexed by
/// proof-clause id (`None` for original clauses).  Clause bodies live in
/// the arena; deleted clauses drop their chains, and [`Solver::proof`]
/// renumbers the survivors densely on export.
#[derive(Clone, Debug, Default)]
struct ProofRecorder {
    chains: Vec<Option<Chain>>,
}

impl ProofRecorder {
    fn register_original(&mut self) -> u32 {
        self.chains.push(None);
        (self.chains.len() - 1) as u32
    }

    fn register_learned(&mut self, chain: Chain) -> u32 {
        self.chains.push(Some(chain));
        (self.chains.len() - 1) as u32
    }
}

fn remap_chain(chain: &Chain, remap: &[usize]) -> Chain {
    debug_assert!(remap[chain.start] != usize::MAX);
    Chain {
        start: remap[chain.start],
        steps: chain
            .steps
            .iter()
            .map(|&(v, c)| {
                debug_assert!(remap[c] != usize::MAX);
                (v, remap[c])
            })
            .collect(),
    }
}

/// A conflict-driven clause-learning SAT solver with proof logging.
///
/// See the crate-level documentation for an overview and an example.
#[derive(Clone, Debug)]
pub struct Solver {
    arena: ClauseArena,
    /// Live clauses (original plus learned, minus deleted).
    num_clauses: usize,
    /// Live learned clauses (the reduction trigger).
    learned_live: u64,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    /// Trail index of each assigned variable (stale when unassigned);
    /// orders the resolution steps of proof-exact clause minimization.
    trail_pos: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: BinaryHeap<HeapEntry>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// Variables whose `seen` bit is set during conflict analysis.
    to_clear: Vec<usize>,
    /// DFS stack of the recursive-minimization redundancy check.
    min_stack: Vec<Var>,
    /// Scratch marks of the chain-extension pass (0 none, 1 kept,
    /// 2 queued for elimination).
    cmark: Vec<u8>,
    /// Per-decision-level stamps for LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,
    ok: bool,
    proof: Option<ProofRecorder>,
    final_chain: Option<Chain>,
    assumption_core: Vec<Lit>,
    stats: SolverStats,
    status: Option<SolveResult>,
    /// Cooperative cancellation flag, checked periodically during search.
    /// Cloned solvers share the flag, so one `cancel` stops a whole family
    /// of worker clones.
    interrupt: Option<Arc<AtomicBool>>,
    /// Per-call conflict budget; `None` means unlimited.
    conflict_limit: Option<u64>,
    /// Periodic statistics observer; clones share it like the interrupt
    /// flag.
    probe: Option<ProgressProbe>,
    /// Conflict count at which the probe fires next.
    probe_next: u64,
    /// Learned-clause count that triggers the next database reduction;
    /// `None` disables reduction.
    reduce_limit: Option<u64>,
    /// Shared memory budget ([`Solver::set_memory_budget`]); the solver
    /// folds its estimated footprint into the shared total at the same
    /// cadence as the interrupt check.
    mem_budget: Option<MemoryBudget>,
    /// Bytes this solver has registered with `mem_budget`; clones reset
    /// to 0 so only the solver that registered bytes releases them.
    mem_registered: Registered,
    /// Deterministic fault injector; unarmed (free) in production.
    faults: FaultPlan,
    /// An injected spurious interrupt from an allocation-site fault,
    /// consumed at the next cancellation point.
    injected_stop: bool,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with proof logging enabled.
    pub fn new() -> Solver {
        Solver {
            arena: ClauseArena::default(),
            num_clauses: 0,
            learned_live: 0,
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            trail_pos: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: BinaryHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            to_clear: Vec::new(),
            min_stack: Vec::new(),
            cmark: Vec::new(),
            lbd_stamp: vec![0],
            lbd_counter: 0,
            ok: true,
            proof: Some(ProofRecorder::default()),
            final_chain: None,
            assumption_core: Vec::new(),
            stats: SolverStats::default(),
            status: None,
            interrupt: None,
            conflict_limit: None,
            probe: None,
            probe_next: 0,
            reduce_limit: Some(DEFAULT_REDUCE_FIRST),
            mem_budget: None,
            mem_registered: Registered(0),
            faults: FaultPlan::none(),
            injected_stop: false,
        }
    }

    /// Enables or disables resolution-proof logging (default: enabled).
    ///
    /// With logging off no chains are recorded, [`Solver::proof`] returns
    /// `None`, and database reduction is unrestricted; engines that only
    /// need SAT/UNSAT answers (IC3/PDR, incremental BMC) run measurably
    /// lighter this way.
    ///
    /// # Panics
    ///
    /// Panics when called after a clause has been added — a half-logged
    /// clause database could not produce a checkable proof.
    pub fn set_proof_logging(&mut self, enabled: bool) {
        assert!(
            self.arena.is_empty(),
            "proof logging must be configured before clauses are added"
        );
        self.proof = if enabled {
            Some(ProofRecorder::default())
        } else {
            None
        };
    }

    /// Returns `true` while resolution proofs are being recorded.
    pub fn proof_logging(&self) -> bool {
        self.proof.is_some()
    }

    /// Sets the learned-clause count that triggers the next database
    /// reduction pass (`None` disables reduction).  Each pass raises the
    /// trigger, so the database still grows — just sublinearly in the
    /// conflict count.
    pub fn set_reduce_interval(&mut self, first: Option<u64>) {
        self.reduce_limit = first;
    }

    /// Installs (or clears) a shared interrupt flag.
    ///
    /// While the flag reads `true`, [`Solver::solve_with_assumptions`]
    /// returns [`SolveResult::Interrupted`] at the next cancellation point
    /// (every `INTERRUPT_CHECK_INTERVAL` conflicts-or-decisions).  The
    /// flag is shared: clones of this solver observe the same cancellation.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag;
    }

    /// Installs (or clears) a periodic statistics observer; see
    /// [`ProgressProbe`].  The first sample fires one interval after
    /// installation.
    pub fn set_progress_probe(&mut self, probe: Option<ProgressProbe>) {
        self.probe_next = match &probe {
            Some(p) => self.stats.conflicts + p.interval(),
            None => 0,
        };
        self.probe = probe;
    }

    /// Caps the number of conflicts a single solve call may spend before
    /// giving up with [`SolveResult::Interrupted`]; `None` removes the cap.
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Installs (or clears) a shared [`MemoryBudget`].
    ///
    /// The solver registers its estimated footprint with the budget
    /// immediately and re-registers at the interrupt-check cadence; once
    /// the *aggregate* across every solver sharing the budget exceeds the
    /// limit, solve calls answer [`SolveResult::Interrupted`] and the
    /// budget records a hit.  Dropping the solver (or clearing the budget)
    /// releases its registered bytes.
    pub fn set_memory_budget(&mut self, budget: Option<MemoryBudget>) {
        if let Some(old) = &self.mem_budget {
            old.release(&mut self.mem_registered.0);
        }
        self.mem_budget = budget;
        let now = self.estimated_bytes();
        if let Some(new) = &self.mem_budget {
            new.update(&mut self.mem_registered.0, now);
        }
    }

    /// Installs a fault-injection plan ([`FaultPlan`]); the default plan
    /// is unarmed.  Clones of the plan (across solvers of one run) share
    /// the countdown, so the configured fault fires exactly once.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// O(1) estimate of this solver's heap footprint in bytes: the clause
    /// arena's reserved capacity, two watchers per clause, and the
    /// per-variable bookkeeping (assignment, trail, activities, watch-list
    /// headers, heap entries).
    pub fn estimated_bytes(&self) -> u64 {
        const PER_VAR: u64 = 96;
        let arena = self.arena.bytes() as u64;
        let watchers = self.num_clauses as u64 * 2 * std::mem::size_of::<Watcher>() as u64;
        let vars = self.assign.len() as u64 * PER_VAR;
        arena + watchers + vars
    }

    /// Re-registers the current footprint with the shared budget; `true`
    /// when the aggregate is over the limit (the solve stops with
    /// [`SolveResult::Interrupted`] and the budget records a hit).
    fn memory_exceeded(&mut self) -> bool {
        if self.mem_budget.is_none() {
            return false;
        }
        let now = self.estimated_bytes();
        let budget = self.mem_budget.as_ref().expect("checked above");
        budget.update(&mut self.mem_registered.0, now);
        if budget.exceeded() {
            budget.record_hit();
            return true;
        }
        false
    }

    /// The `Alloc` fault-injection site: one tick per clause allocation
    /// (original and learned).  A panic/alloc-failure fault unwinds from
    /// here; a spurious interrupt is deferred to the next cancellation
    /// point, since clause addition has no `Interrupted` answer.
    fn fault_alloc(&mut self) {
        if let Some(kind) = self.faults.tick(FaultSite::Alloc) {
            match kind {
                FaultKind::Panic => panic!("injected fault: panic at clause allocation"),
                FaultKind::AllocFail => panic!("injected fault: allocation failure"),
                FaultKind::Interrupt => self.injected_stop = true,
            }
        }
    }

    #[inline]
    fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|flag| flag.load(AtomicOrdering::Acquire))
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.trail_pos.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.cmark.push(0);
        self.lbd_stamp.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push(HeapEntry {
            activity: 0.0,
            var: v,
        });
        v
    }

    /// Ensures that variables `0..count` exist.
    pub fn ensure_vars(&mut self, count: u32) {
        while (self.assign.len() as u32) < count {
            self.new_var();
        }
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.assign.len() as u32
    }

    /// Number of live clauses (original plus learned, minus those retired
    /// by database reduction or the root-satisfied sweep).
    pub fn num_clauses(&self) -> usize {
        self.num_clauses
    }

    /// Returns the accumulated statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// VSIDS activities and saved phases of the first `upto` variables,
    /// plus the current activity increment — everything needed to warm-
    /// start a rebuilt solver (see `IncrementalSolver` recycling).
    pub(crate) fn heuristics(&self, upto: u32) -> (Vec<f64>, Vec<bool>, f64) {
        let n = (upto as usize).min(self.activity.len());
        (
            self.activity[..n].to_vec(),
            self.phase[..n].to_vec(),
            self.var_inc,
        )
    }

    /// Transplants heuristic state captured by [`Solver::heuristics`].
    pub(crate) fn restore_heuristics(&mut self, activity: &[f64], phase: &[bool], var_inc: f64) {
        self.var_inc = var_inc;
        for (v, &a) in activity.iter().enumerate() {
            if v < self.activity.len() {
                self.activity[v] = a;
                self.heap.push(HeapEntry {
                    activity: a,
                    var: Var::new(v as u32),
                });
            }
        }
        for (v, &p) in phase.iter().enumerate() {
            if v < self.phase.len() {
                self.phase[v] = p;
            }
        }
    }

    /// Adds a clause belonging to interpolation partition `partition`
    /// (use 0 when the clause takes no part in interpolation).
    ///
    /// Variables referenced by the literals are allocated on demand.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I, partition: u32) {
        let lits: Vec<Lit> = lits.into_iter().collect();
        if let Some(max) = lits.iter().map(|l| l.var().index()).max() {
            self.ensure_vars(max + 1);
        }
        if !self.ok {
            return;
        }
        // Clauses are always installed at the root level so that the watch
        // set-up below sees a consistent (level-0) partial assignment.
        self.backtrack(0);
        self.fault_alloc();
        let pid = match &mut self.proof {
            Some(recorder) => recorder.register_original(),
            None => NO_PROOF_ID,
        };
        let cref = self.arena.alloc(&lits, false, partition, pid);
        self.num_clauses += 1;
        self.attach_clause(cref);
    }

    /// Adds every clause of a [`Cnf`], preserving the partition labels.
    pub fn add_cnf(&mut self, cnf: &Cnf) {
        self.ensure_vars(cnf.num_vars);
        for clause in &cnf.clauses {
            self.add_clause(clause.lits.iter().copied(), clause.partition);
        }
    }

    /// Chain of the root-level conflict `confl`, recorded only while proof
    /// logging is on.
    fn record_final_chain(&mut self, confl: ClauseRef) {
        if self.proof.is_some() {
            self.final_chain = Some(self.final_chain_from(confl));
        }
    }

    fn attach_clause(&mut self, cref: ClauseRef) {
        let size = self.arena.size(cref);
        if size == 0 {
            self.ok = false;
            if self.proof.is_some() {
                self.final_chain = Some(Chain {
                    start: self.arena.proof_id(cref) as usize,
                    steps: Vec::new(),
                });
            }
            return;
        }
        if size == 1 {
            let l = self.arena.lit(cref, 0);
            match self.value_lit(l) {
                LBool::True => {}
                LBool::Undef => self.enqueue(l, Some(cref)),
                LBool::False => {
                    self.ok = false;
                    self.record_final_chain(cref);
                }
            }
            return;
        }
        // Move two non-false literals to the watch positions when possible.
        let mut first_free = None;
        let mut second_free = None;
        for i in 0..size {
            if self.value_lit(self.arena.lit(cref, i)) != LBool::False {
                if first_free.is_none() {
                    first_free = Some(i);
                } else {
                    second_free = Some(i);
                    break;
                }
            }
        }
        match (first_free, second_free) {
            (None, _) => {
                self.ok = false;
                self.record_final_chain(cref);
            }
            (Some(a), None) => {
                self.arena.swap_lits(cref, 0, a);
                self.watch_clause(cref);
                let first = self.arena.lit(cref, 0);
                if self.value_lit(first) == LBool::Undef {
                    self.enqueue(first, Some(cref));
                }
            }
            (Some(a), Some(b)) => {
                // The ascending scan guarantees a < b, so the first swap
                // (0 ↔ a) cannot displace the literal at b.
                self.arena.swap_lits(cref, 0, a);
                self.arena.swap_lits(cref, 1, b);
                self.watch_clause(cref);
            }
        }
    }

    /// Installs watchers for positions 0 and 1, each blocked by the other.
    fn watch_clause(&mut self, cref: ClauseRef) {
        let l0 = self.arena.lit(cref, 0);
        let l1 = self.arena.lit(cref, 1);
        let binary = self.arena.size(cref) == 2;
        self.watches[l0.code() as usize].push(Watcher {
            cref,
            blocker: l1,
            binary,
        });
        self.watches[l1.code() as usize].push(Watcher {
            cref,
            blocker: l0,
            binary,
        });
    }

    /// Removes the two watchers of a clause (positions 0 and 1).
    fn detach_clause(&mut self, cref: ClauseRef) {
        for pos in 0..2 {
            let lit = self.arena.lit(cref, pos);
            let list = &mut self.watches[lit.code() as usize];
            let at = list
                .iter()
                .position(|w| w.cref == cref)
                .expect("watched clause is in both watch lists");
            list.swap_remove(at);
        }
    }

    #[inline]
    fn value_var(&self, var: Var) -> LBool {
        self.assign[var.index() as usize]
    }

    #[inline]
    fn value_lit(&self, lit: Lit) -> LBool {
        match self.assign[lit.var().index() as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if lit.is_negative() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if lit.is_negative() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// Returns the value assigned to `var` by the most recent satisfiable
    /// call, or `None` when the variable is unassigned.  Variables the
    /// solver has never seen (allocated by a CNF builder but mentioned in
    /// no loaded clause — e.g. a pinned input outside every encoded cone)
    /// are unconstrained, hence unassigned.
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.assign.get(var.index() as usize) {
            Some(LBool::True) => Some(true),
            Some(LBool::False) => Some(false),
            Some(LBool::Undef) | None => None,
        }
    }

    /// Returns the value of a literal under the current assignment.
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| v != lit.is_negative())
    }

    /// Returns a total model (unassigned variables default to `false`).
    ///
    /// Only meaningful after a [`SolveResult::Sat`] answer.
    pub fn model(&self) -> Vec<bool> {
        (0..self.num_vars())
            .map(|i| self.value(Var::new(i)).unwrap_or(false))
            .collect()
    }

    /// Returns the subset of the assumptions responsible for the last
    /// `Unsat` answer of [`Solver::solve_with_assumptions`].
    ///
    /// Empty when the formula is unsatisfiable regardless of assumptions.
    pub fn assumption_core(&self) -> &[Lit] {
        &self.assumption_core
    }

    /// Returns the resolution proof of the last assumption-free `Unsat`
    /// answer, or `None` when no refutation has been derived (or proof
    /// logging is off).
    ///
    /// The export contains every original clause (interpolation needs the
    /// full partition layout for its variable-occurrence ranges) but only
    /// the learned clauses actually referenced — transitively — by the
    /// empty-clause chain; everything else the search learned along the
    /// way is skipped instead of cloned.
    pub fn proof(&self) -> Option<Proof> {
        let recorder = self.proof.as_ref()?;
        let final_chain = self.final_chain.as_ref()?;
        let total = recorder.chains.len();
        // Cone of the refutation over proof ids.
        let mut needed = vec![false; total];
        let mut stack: Vec<usize> = Vec::new();
        let push_chain = |chain: &Chain, stack: &mut Vec<usize>| {
            stack.push(chain.start);
            for &(_, c) in &chain.steps {
                stack.push(c);
            }
        };
        push_chain(final_chain, &mut stack);
        while let Some(id) = stack.pop() {
            if needed[id] {
                continue;
            }
            needed[id] = true;
            if let Some(chain) = &recorder.chains[id] {
                push_chain(chain, &mut stack);
            }
        }
        // Export in creation order (the arena preserves it across
        // compactions), renumbering chains densely.
        let mut remap = vec![usize::MAX; total];
        let mut clauses = Vec::new();
        for cref in self.arena.refs() {
            if self.arena.is_deleted(cref) {
                continue;
            }
            let pid = self.arena.proof_id(cref) as usize;
            let learned = self.arena.is_learned(cref);
            if learned && !needed[pid] {
                continue;
            }
            remap[pid] = clauses.len();
            let lits: Vec<Lit> = (0..self.arena.size(cref))
                .map(|i| self.arena.lit(cref, i))
                .collect();
            let origin = if learned {
                let chain = recorder.chains[pid]
                    .as_ref()
                    .expect("clauses in the refutation cone keep their chains");
                ClauseOrigin::Learned {
                    chain: remap_chain(chain, &remap),
                }
            } else {
                ClauseOrigin::Original {
                    partition: self.arena.partition(cref),
                }
            };
            clauses.push(ProofClause { lits, origin });
        }
        Some(Proof {
            clauses,
            empty_clause_chain: Some(remap_chain(final_chain, &remap)),
        })
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value_lit(lit), LBool::Undef);
        let v = lit.var().index() as usize;
        self.assign[v] = if lit.is_negative() {
            LBool::False
        } else {
            LBool::True
        };
        self.level[v] = self.decision_level() as u32;
        self.trail_pos[v] = self.trail.len() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let widx = false_lit.code() as usize;
            let mut i = 0;
            'watchers: while i < self.watches[widx].len() {
                let w = self.watches[widx][i];
                let blocker_value = self.value_lit(w.blocker);
                if blocker_value == LBool::True {
                    i += 1;
                    continue;
                }
                if w.binary {
                    // The blocker is the only other literal: conclude
                    // without reading clause memory.
                    if blocker_value == LBool::False {
                        self.qhead = self.trail.len();
                        return Some(w.cref);
                    }
                    self.enqueue(w.blocker, Some(w.cref));
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                // Make sure the false literal is at position 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                let first = self.arena.lit(cref, 0);
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    self.watches[widx][i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let size = self.arena.size(cref);
                for j in 2..size {
                    let candidate = self.arena.lit(cref, j);
                    if self.value_lit(candidate) != LBool::False {
                        self.arena.swap_lits(cref, 1, j);
                        self.watches[widx].swap_remove(i);
                        self.watches[candidate.code() as usize].push(Watcher {
                            cref,
                            blocker: first,
                            binary: false,
                        });
                        continue 'watchers;
                    }
                }
                if self.value_lit(first) == LBool::False {
                    // Conflict.
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                // Unit clause: propagate `first`.
                self.enqueue(first, Some(cref));
                self.watches[widx][i].blocker = first;
                i += 1;
            }
        }
        None
    }

    fn bump_var(&mut self, var: Var) {
        let v = var.index() as usize;
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.push(HeapEntry {
            activity: self.activity[v],
            var,
        });
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// Pins a clause referenced by a recorded chain: while proof logging
    /// is on such clauses are exempt from database reduction, so the
    /// eventual [`Solver::proof`] export can still read their bodies.
    fn pin_for_proof(&mut self, cref: ClauseRef) {
        if self.proof.is_some() {
            self.arena.pin(cref);
        }
    }

    /// Number of distinct decision levels among `lits` (the clause's LBD
    /// or "glue"; level 0 counts like any other level).
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut lbd = 0;
        for l in lits {
            let lvl = self.level[l.var().index() as usize] as usize;
            // Already-satisfied assumptions open "dummy" decision levels
            // that assign no variable, so levels can exceed the variable
            // count the stamp array was sized for — grow it on demand.
            if lvl >= self.lbd_stamp.len() {
                self.lbd_stamp.resize(lvl + 1, 0);
            }
            if self.lbd_stamp[lvl] != stamp {
                self.lbd_stamp[lvl] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis; returns the learned clause (asserting
    /// literal first, minimized), the backtrack level, the clause LBD and
    /// — while proof logging is on — the resolution chain deriving it.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, usize, u32, Option<Chain>) {
        let current_level = self.decision_level() as u32;
        let mut learned: Vec<Lit> = vec![Lit::positive(Var::new(0))];
        let mut chain = self.proof.as_ref().map(|_| Chain {
            start: self.arena.proof_id(confl) as usize,
            steps: Vec::new(),
        });
        let mut path_count: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut clause_ref = confl;

        loop {
            self.pin_for_proof(clause_ref);
            if let (Some(pl), Some(chain)) = (p, chain.as_mut()) {
                chain
                    .steps
                    .push((pl.var(), self.arena.proof_id(clause_ref) as usize));
            }
            let size = self.arena.size(clause_ref);
            for i in 0..size {
                let q = self.arena.lit(clause_ref, i);
                if let Some(pl) = p {
                    if q.var() == pl.var() {
                        continue;
                    }
                }
                let v = q.var().index() as usize;
                if self.seen[v] {
                    continue;
                }
                self.seen[v] = true;
                self.to_clear.push(v);
                self.bump_var(q.var());
                if self.level[v] == current_level {
                    path_count += 1;
                } else {
                    // Literals below the current level (including level 0)
                    // stay in the learned clause here; minimization below
                    // removes the redundant ones with exact chain
                    // extension, so the recorded resolution stays valid.
                    learned.push(q);
                }
            }
            // Find the next current-level literal to resolve on.
            loop {
                index -= 1;
                let v = self.trail[index].var().index() as usize;
                if self.seen[v] && self.level[v] == current_level {
                    break;
                }
            }
            let pivot = self.trail[index];
            path_count -= 1;
            self.seen[pivot.var().index() as usize] = false;
            if path_count == 0 {
                learned[0] = !pivot;
                break;
            }
            p = Some(pivot);
            clause_ref = self.reason[pivot.var().index() as usize]
                .expect("propagated literal at current level has a reason");
        }

        let removed = self.minimize(&mut learned, chain.as_mut());
        self.stats.minimized_literals += removed;

        for v in self.to_clear.drain(..) {
            self.seen[v] = false;
        }

        // Determine the backtrack level and place a literal of that level at
        // position 1 so it can be watched.
        let backtrack_level = if learned.len() == 1 {
            0
        } else {
            let mut max_idx = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var().index() as usize]
                    > self.level[learned[max_idx].var().index() as usize]
                {
                    max_idx = i;
                }
            }
            learned.swap(1, max_idx);
            self.level[learned[1].var().index() as usize] as usize
        };
        let lbd = self.compute_lbd(&learned);
        (learned, backtrack_level, lbd, chain)
    }

    /// Recursive learned-clause minimization: removes every literal whose
    /// falsification is implied by the rest of the clause (its reason
    /// chain bottoms out in clause literals or level-0 facts).  When a
    /// chain is being recorded, the removals are appended to it as real
    /// resolution steps, so the recorded derivation stays exact.
    ///
    /// On entry `seen` marks exactly the variables of `learned[1..]`;
    /// speculative marks added by the redundancy DFS are registered in
    /// `to_clear` like the analysis marks.  Returns the number of removed
    /// literals.
    fn minimize(&mut self, learned: &mut Vec<Lit>, chain: Option<&mut Chain>) -> u64 {
        if learned.len() <= 1 {
            return 0;
        }
        let mut kept: Vec<Lit> = Vec::with_capacity(learned.len());
        let mut removed: Vec<Lit> = Vec::new();
        let (first, rest) = learned.split_first().expect("asserting literal present");
        kept.push(*first);
        for &l in rest {
            if self.lit_redundant(l) {
                removed.push(l);
            } else {
                kept.push(l);
            }
        }
        if removed.is_empty() {
            return 0;
        }
        if let Some(chain) = chain {
            self.extend_chain_for_removed(&kept, &removed, chain);
        }
        let count = removed.len() as u64;
        *learned = kept;
        count
    }

    /// Returns `true` when `p` (a falsified literal of the learned
    /// clause) is redundant: every path through the implication graph
    /// from its reason terminates in clause literals or level-0 facts.
    fn lit_redundant(&mut self, p: Lit) -> bool {
        let v0 = p.var().index() as usize;
        if self.level[v0] == 0 {
            return true;
        }
        if self.reason[v0].is_none() {
            return false;
        }
        self.min_stack.clear();
        self.min_stack.push(p.var());
        let top = self.to_clear.len();
        while let Some(v) = self.min_stack.pop() {
            let cref = self.reason[v.index() as usize].expect("stacked literals have reasons");
            let size = self.arena.size(cref);
            for i in 0..size {
                let q = self.arena.lit(cref, i);
                if q.var() == v {
                    continue;
                }
                let qv = q.var().index() as usize;
                if self.seen[qv] || self.level[qv] == 0 {
                    continue;
                }
                if self.reason[qv].is_none() {
                    // A decision or assumption outside the clause: `p` is
                    // not redundant.  Undo this check's speculative marks.
                    for &u in &self.to_clear[top..] {
                        self.seen[u] = false;
                    }
                    self.to_clear.truncate(top);
                    return false;
                }
                self.seen[qv] = true;
                self.to_clear.push(qv);
                self.min_stack.push(q.var());
            }
        }
        // Successful marks persist: those variables are now known-
        // redundant sources for the remaining checks (and are cleared
        // with the other analysis marks at the end of `analyze`).
        true
    }

    /// Appends to `chain` the resolution steps eliminating every removed
    /// literal (and whatever falsified literals their reasons introduce),
    /// in decreasing trail order so each step's pivot is present in the
    /// running resolvent.
    fn extend_chain_for_removed(&mut self, kept: &[Lit], removed: &[Lit], chain: &mut Chain) {
        const KEPT: u8 = 1;
        const QUEUED: u8 = 2;
        let mut marked: Vec<usize> = Vec::with_capacity(kept.len() + removed.len());
        for l in kept {
            let v = l.var().index() as usize;
            self.cmark[v] = KEPT;
            marked.push(v);
        }
        // Max-heap on trail position: eliminate later assignments first.
        let mut heap: BinaryHeap<(u32, u32)> = BinaryHeap::new();
        for l in removed {
            let v = l.var().index() as usize;
            self.cmark[v] = QUEUED;
            marked.push(v);
            heap.push((self.trail_pos[v], l.var().index()));
        }
        while let Some((_, vidx)) = heap.pop() {
            let cref = self.reason[vidx as usize].expect("removed literals have reasons");
            self.pin_for_proof(cref);
            chain
                .steps
                .push((Var::new(vidx), self.arena.proof_id(cref) as usize));
            let size = self.arena.size(cref);
            for i in 0..size {
                let q = self.arena.lit(cref, i);
                let qv = q.var().index() as usize;
                if qv == vidx as usize || self.cmark[qv] != 0 {
                    continue;
                }
                // `q` is falsified and not in the kept clause: it enters
                // the resolvent here and must be eliminated in turn.
                self.cmark[qv] = QUEUED;
                marked.push(qv);
                heap.push((self.trail_pos[qv], q.var().index()));
            }
        }
        for v in marked {
            self.cmark[v] = 0;
        }
    }

    /// Builds the resolution chain refuting the formula from a conflict in
    /// which every literal is falsified at decision level 0.
    fn final_chain_from(&mut self, confl: ClauseRef) -> Chain {
        self.pin_for_proof(confl);
        let mut seen = vec![false; self.num_vars() as usize];
        for i in 0..self.arena.size(confl) {
            let l = self.arena.lit(confl, i);
            seen[l.var().index() as usize] = true;
        }
        let mut steps = Vec::new();
        for idx in (0..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var().index() as usize;
            if !seen[v] {
                continue;
            }
            let reason = self.reason[v]
                .expect("level-0 assignments used in the final conflict have reasons");
            self.pin_for_proof(reason);
            steps.push((lit.var(), self.arena.proof_id(reason) as usize));
            for i in 0..self.arena.size(reason) {
                let q = self.arena.lit(reason, i);
                seen[q.var().index() as usize] = true;
            }
        }
        Chain {
            start: self.arena.proof_id(confl) as usize,
            steps,
        }
    }

    fn backtrack(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level];
        while self.trail.len() > target {
            let lit = self.trail.pop().expect("trail not empty");
            let v = lit.var().index() as usize;
            self.phase[v] = !lit.is_negative();
            self.assign[v] = LBool::Undef;
            self.reason[v] = None;
            self.heap.push(HeapEntry {
                activity: self.activity[v],
                var: lit.var(),
            });
        }
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn add_learned(&mut self, lits: Vec<Lit>, lbd: u32, chain: Option<Chain>) -> ClauseRef {
        self.fault_alloc();
        self.stats.learned += 1;
        let pid = match (&mut self.proof, chain) {
            (Some(recorder), Some(chain)) => recorder.register_learned(chain),
            _ => NO_PROOF_ID,
        };
        let cref = self.arena.alloc(&lits, true, 0, pid);
        self.arena.set_lbd(cref, lbd);
        self.num_clauses += 1;
        self.learned_live += 1;
        if lits.len() >= 2 {
            self.watch_clause(cref);
        }
        self.enqueue(lits[0], Some(cref));
        cref
    }

    /// Returns `true` when the clause is the reason of one of its watched
    /// literals (deleting it would orphan a trail assignment).
    fn locked(&self, cref: ClauseRef) -> bool {
        let watched = self.arena.size(cref).min(2);
        for pos in 0..watched {
            let l = self.arena.lit(cref, pos);
            if self.value_lit(l) == LBool::True
                && self.reason[l.var().index() as usize] == Some(cref)
            {
                return true;
            }
        }
        false
    }

    /// Deletes a clause: detaches its watchers, marks the arena slot as
    /// garbage and drops its recorded chain (a deleted clause can never
    /// be referenced by a later one).
    fn delete_clause(&mut self, cref: ClauseRef) {
        if self.arena.size(cref) >= 2 {
            self.detach_clause(cref);
        }
        if self.arena.is_learned(cref) {
            self.learned_live -= 1;
            self.stats.learned_deleted += 1;
        }
        if let Some(recorder) = &mut self.proof {
            let pid = self.arena.proof_id(cref);
            if pid != NO_PROOF_ID {
                recorder.chains[pid as usize] = None;
            }
        }
        self.num_clauses -= 1;
        self.arena.mark_deleted(cref);
    }

    fn maybe_reduce(&mut self) {
        if let Some(limit) = self.reduce_limit {
            if self.learned_live >= limit {
                self.reduce_db();
            }
        }
    }

    /// One learned-clause database reduction pass: collects the deletable
    /// learned clauses (not glue, not binary, not locked as a reason, not
    /// pinned by a recorded proof chain) and retires the worse half by
    /// `(LBD, size)`.  Raises the next trigger and compacts the arena when
    /// enough garbage has accumulated.
    fn reduce_db(&mut self) {
        let refs: Vec<ClauseRef> = self.arena.refs().collect();
        let mut candidates: Vec<(u32, u32, ClauseRef)> = Vec::new();
        for cref in refs {
            if self.arena.is_deleted(cref)
                || !self.arena.is_learned(cref)
                || self.arena.is_pinned(cref)
            {
                continue;
            }
            let size = self.arena.size(cref);
            let lbd = self.arena.lbd(cref);
            if size <= 2 || lbd <= 2 || self.locked(cref) {
                continue;
            }
            candidates.push((lbd, size as u32, cref));
        }
        // Worst first: highest LBD, then longest, then oldest.
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
        let doomed = candidates.len() / 2;
        for &(_, _, cref) in &candidates[..doomed] {
            self.delete_clause(cref);
        }
        self.stats.db_reductions += 1;
        if let Some(limit) = self.reduce_limit {
            self.reduce_limit = Some(limit + REDUCE_INC);
        }
        self.maybe_collect_garbage();
    }

    /// Removes every clause satisfied at decision level 0 — the clauses an
    /// `IncrementalSolver` retirement permanently deactivates, which would
    /// otherwise clog the watch lists forever.  Only available while proof
    /// logging is off (a no-op otherwise: exported proofs may reference
    /// any original clause).
    pub fn remove_root_satisfied(&mut self) {
        if self.proof.is_some() || !self.ok {
            return;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        let refs: Vec<ClauseRef> = self.arena.refs().collect();
        for cref in refs {
            if self.arena.is_deleted(cref) {
                continue;
            }
            let size = self.arena.size(cref);
            let satisfied =
                (0..size).any(|i| self.value_lit(self.arena.lit(cref, i)) == LBool::True);
            if !satisfied {
                continue;
            }
            // The clause may be the reason of a root assignment (e.g. a
            // retirement unit).  The assignment itself is permanent, and
            // with proof logging off level-0 reasons are never read again
            // — conflict analysis resolves only current-level literals and
            // minimization treats level-0 facts as redundant outright — so
            // the reference can be dropped along with the clause.
            for pos in 0..size.min(2) {
                let l = self.arena.lit(cref, pos);
                let v = l.var().index() as usize;
                if self.reason[v] == Some(cref) {
                    debug_assert_eq!(self.level[v], 0);
                    self.reason[v] = None;
                }
            }
            self.delete_clause(cref);
        }
        self.maybe_collect_garbage();
    }

    fn maybe_collect_garbage(&mut self) {
        let wasted = self.arena.wasted_words();
        if wasted > 0 && wasted * 3 >= self.arena.len_words() {
            self.garbage_collect();
        }
    }

    /// Compacts the arena, rewriting every watcher and reason reference
    /// through the forwarding addresses.  Clause order — and with it the
    /// proof-id order the export relies on — is preserved.
    fn garbage_collect(&mut self) {
        let refs: Vec<ClauseRef> = self.arena.refs().collect();
        let mut to = ClauseArena::with_capacity(self.arena.len_words() - self.arena.wasted_words());
        for cref in refs {
            if self.arena.is_deleted(cref) {
                continue;
            }
            let new = self.arena.copy_into(cref, &mut to);
            self.arena.set_forward(cref, new);
        }
        let arena = &self.arena;
        for list in &mut self.watches {
            for w in list.iter_mut() {
                w.cref = arena.forward(w.cref);
            }
        }
        for cref in self.reason.iter_mut().flatten() {
            *cref = arena.forward(*cref);
        }
        self.arena = to;
    }

    #[cfg(test)]
    fn arena_words(&self) -> (usize, usize) {
        (self.arena.len_words(), self.arena.wasted_words())
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(entry) = self.heap.pop() {
            if self.value_var(entry.var) == LBool::Undef {
                return Some(entry.var);
            }
        }
        // The lazy heap may run dry; fall back to a linear scan.
        (0..self.num_vars())
            .map(Var::new)
            .find(|&v| self.value_var(v) == LBool::Undef)
    }

    fn analyze_final(&mut self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.decision_level() == 0 {
            return core;
        }
        let mut seen = vec![false; self.num_vars() as usize];
        seen[failed.var().index() as usize] = true;
        let root = self.trail_lim[0];
        for i in (root..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index() as usize;
            if !seen[v] {
                continue;
            }
            match self.reason[v] {
                None => core.push(lit),
                Some(r) => {
                    for j in 0..self.arena.size(r) {
                        let q = self.arena.lit(r, j);
                        if self.level[q.var().index() as usize] > 0 {
                            seen[q.var().index() as usize] = true;
                        }
                    }
                }
            }
            seen[v] = false;
        }
        core
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// On an `Unsat` answer caused by the assumptions,
    /// [`Solver::assumption_core`] returns the responsible subset.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.assumption_core.clear();
        self.backtrack(0);
        if !self.ok {
            self.status = Some(SolveResult::Unsat);
            return SolveResult::Unsat;
        }
        for a in assumptions {
            self.ensure_vars(a.var().index() + 1);
        }
        if let Some(confl) = self.propagate() {
            self.ok = false;
            self.record_final_chain(confl);
            self.status = Some(SolveResult::Unsat);
            return SolveResult::Unsat;
        }

        if self.interrupted() || std::mem::take(&mut self.injected_stop) || self.memory_exceeded() {
            self.backtrack(0);
            self.status = Some(SolveResult::Interrupted);
            return SolveResult::Interrupted;
        }

        let mut restart_round: u64 = 0;
        let mut conflicts_since_restart: u64 = 0;
        let mut restart_limit = 100 * luby(restart_round);
        let mut conflicts_this_call: u64 = 0;
        let mut steps: u64 = 0;

        loop {
            steps += 1;
            if steps.is_multiple_of(INTERRUPT_CHECK_INTERVAL)
                && (self.interrupted()
                    || std::mem::take(&mut self.injected_stop)
                    || self.memory_exceeded())
            {
                self.backtrack(0);
                self.status = Some(SolveResult::Interrupted);
                return SolveResult::Interrupted;
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if let Some(kind) = self.faults.tick(FaultSite::Conflict) {
                    match kind {
                        FaultKind::Panic => panic!("injected fault: panic at conflict"),
                        FaultKind::AllocFail => {
                            panic!("injected fault: allocation failure at conflict")
                        }
                        FaultKind::Interrupt => {
                            self.backtrack(0);
                            self.status = Some(SolveResult::Interrupted);
                            return SolveResult::Interrupted;
                        }
                    }
                }
                conflicts_since_restart += 1;
                conflicts_this_call += 1;
                if let Some(probe) = &self.probe {
                    if self.stats.conflicts >= self.probe_next {
                        let probe = probe.clone();
                        self.probe_next = self.stats.conflicts + probe.interval();
                        (probe.callback)(&self.stats);
                    }
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.record_final_chain(confl);
                    self.status = Some(SolveResult::Unsat);
                    return SolveResult::Unsat;
                }
                if self
                    .conflict_limit
                    .is_some_and(|limit| conflicts_this_call > limit)
                {
                    self.backtrack(0);
                    self.status = Some(SolveResult::Interrupted);
                    return SolveResult::Interrupted;
                }
                let (learned, backtrack_level, lbd, chain) = self.analyze(confl);
                self.backtrack(backtrack_level);
                self.add_learned(learned, lbd, chain);
                self.decay_activities();
                self.maybe_reduce();
            } else {
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    restart_round += 1;
                    conflicts_since_restart = 0;
                    restart_limit = 100 * luby(restart_round);
                    self.backtrack(0);
                    continue;
                }
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.value_lit(p) {
                        LBool::True => {
                            // Already satisfied: open a dummy level so the
                            // remaining assumptions keep their positions.
                            self.new_decision_level();
                        }
                        LBool::False => {
                            self.assumption_core = self.analyze_final(p);
                            self.status = Some(SolveResult::Unsat);
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => {
                            self.new_decision_level();
                            self.enqueue(p, None);
                        }
                    }
                } else {
                    match self.pick_branch_var() {
                        None => {
                            self.status = Some(SolveResult::Sat);
                            return SolveResult::Sat;
                        }
                        Some(v) => {
                            self.stats.decisions += 1;
                            self.new_decision_level();
                            let lit = Lit::new(v, !self.phase[v.index() as usize]);
                            self.enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }

    /// Returns the result of the most recent solve call, if any.
    pub fn status(&self) -> Option<SolveResult> {
        self.status
    }
}

impl Drop for Solver {
    fn drop(&mut self) {
        // Release this solver's contribution to the shared memory budget
        // (clones registered nothing, so their drop releases nothing).
        if let Some(budget) = &self.mem_budget {
            budget.release(&mut self.mem_registered.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: usize, neg: bool) -> Lit {
        Lit::new(solver_vars[i], neg)
    }

    fn vars(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn single_unit_clause() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([lit(&v, 0, false)], 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
    }

    #[test]
    fn contradictory_units_are_unsat_with_proof() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([lit(&v, 0, false)], 1);
        s.add_clause([lit(&v, 0, true)], 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("proof available");
        proof.check().expect("proof must check");
    }

    #[test]
    fn simple_implication_chain_unsat() {
        // a, a->b, b->c, ¬c
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([lit(&v, 0, false)], 1);
        s.add_clause([lit(&v, 0, true), lit(&v, 1, false)], 1);
        s.add_clause([lit(&v, 1, true), lit(&v, 2, false)], 2);
        s.add_clause([lit(&v, 2, true)], 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.proof().expect("proof").check().expect("valid proof");
    }

    #[test]
    fn satisfiable_2sat_instance() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([lit(&v, 0, false), lit(&v, 1, false)], 1);
        s.add_clause([lit(&v, 0, true), lit(&v, 2, false)], 1);
        s.add_clause([lit(&v, 1, true), lit(&v, 3, false)], 1);
        s.add_clause([lit(&v, 2, true), lit(&v, 3, true)], 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        let model = s.model();
        // Verify the model satisfies every clause.
        assert!(model[v[0].index() as usize] || model[v[1].index() as usize]);
        assert!(!model[v[0].index() as usize] || model[v[2].index() as usize]);
        assert!(!model[v[1].index() as usize] || model[v[3].index() as usize]);
        assert!(!model[v[2].index() as usize] || !model[v[3].index() as usize]);
    }

    /// Encodes the pigeonhole principle PHP(holes+1, holes), a classic
    /// unsatisfiable family that genuinely exercises clause learning.
    fn pigeonhole(solver: &mut Solver, holes: usize) {
        let pigeons = holes + 1;
        let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
        solver.ensure_vars((pigeons * holes) as u32);
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| Lit::positive(var(p, h))).collect();
            solver.add_clause(clause, 1);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    solver.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))], 2);
                }
            }
        }
    }

    #[test]
    fn pigeonhole_unsat_with_valid_proof() {
        for holes in 2..=5 {
            let mut s = Solver::new();
            pigeonhole(&mut s, holes);
            assert_eq!(s.solve(), SolveResult::Unsat, "php({holes})");
            let proof = s.proof().expect("proof");
            proof.check().expect("proof checks");
            assert!(proof.num_learned() > 0 || holes <= 2);
        }
    }

    #[test]
    fn random_3sat_agrees_with_reference_dpll() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(20110316);
        for round in 0..40 {
            let num_vars = 8 + (round % 5);
            let num_clauses = (num_vars as f64 * 4.0) as usize;
            let mut cnf_builder = cnf::CnfBuilder::new();
            for _ in 0..num_vars {
                cnf_builder.new_var();
            }
            cnf_builder.set_partition(1);
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = Var::new(rng.gen_range(0..num_vars) as u32);
                    clause.push(Lit::new(v, rng.gen_bool(0.5)));
                }
                cnf_builder.add_clause(clause);
            }
            let cnf = cnf_builder.into_cnf();
            let expected = reference_sat(&cnf);
            let mut s = Solver::new();
            s.add_cnf(&cnf);
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, expected, "round {round}");
            if got {
                let model = s.model();
                assert!(cnf.evaluate(&model), "model must satisfy the formula");
            } else {
                s.proof().expect("proof").check().expect("proof checks");
            }
        }
    }

    fn reference_sat(cnf: &Cnf) -> bool {
        let n = cnf.num_vars;
        (0..(1u64 << n)).any(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            cnf.evaluate(&assignment)
        })
    }

    #[test]
    fn assumptions_select_branches() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        // a -> b
        s.add_clause([lit(&v, 0, true), lit(&v, 1, false)], 1);
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 0, false), lit(&v, 1, true)]),
            SolveResult::Unsat
        );
        let core = s.assumption_core().to_vec();
        assert!(!core.is_empty());
        // Without the conflicting assumption the instance is satisfiable.
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 0, false)]),
            SolveResult::Sat
        );
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn assumption_core_is_subset_of_assumptions() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        // x0 ∧ x1 -> conflict; x2, x3 irrelevant.
        s.add_clause([lit(&v, 0, true), lit(&v, 1, true)], 1);
        let assumptions = [
            lit(&v, 2, false),
            lit(&v, 0, false),
            lit(&v, 3, false),
            lit(&v, 1, false),
        ];
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        for l in s.assumption_core() {
            assert!(assumptions.contains(l) || assumptions.contains(&!*l));
        }
        // The irrelevant assumptions must not both be required.
        let core = s.assumption_core();
        assert!(core.len() <= 3);
    }

    #[test]
    fn solver_is_reusable_after_sat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([lit(&v, 0, false), lit(&v, 1, false)], 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 0, true)]),
            SolveResult::Sat
        );
        assert_eq!(s.value(v[1]), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 0, true), lit(&v, 1, true)]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        let _ = s.solve();
        let stats = s.stats();
        assert!(stats.conflicts > 0);
        assert!(stats.decisions > 0);
        assert!(stats.propagations > 0);
    }

    #[test]
    fn preset_interrupt_flag_stops_the_search() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(flag.clone()));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        assert_eq!(s.status(), Some(SolveResult::Interrupted));
        // Clearing the flag makes the same solver answer definitively.
        flag.store(false, AtomicOrdering::Release);
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.proof().expect("proof").check().expect("proof checks");
    }

    #[test]
    fn interrupt_flag_is_shared_across_clones() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        let flag = Arc::new(AtomicBool::new(false));
        s.set_interrupt(Some(flag.clone()));
        let mut clone = s.clone();
        flag.store(true, AtomicOrdering::Release);
        assert_eq!(clone.solve(), SolveResult::Interrupted);
        assert_eq!(s.solve(), SolveResult::Interrupted);
    }

    #[test]
    fn progress_probe_samples_the_search_periodically() {
        use std::sync::atomic::AtomicU64;
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        let samples = Arc::new(AtomicU64::new(0));
        let high_water = Arc::new(AtomicU64::new(0));
        let (samples_in, high_water_in) = (samples.clone(), high_water.clone());
        s.set_progress_probe(Some(ProgressProbe::new(4, move |stats| {
            samples_in.fetch_add(1, AtomicOrdering::Relaxed);
            high_water_in.store(stats.conflicts, AtomicOrdering::Relaxed);
        })));
        assert_eq!(s.solve(), SolveResult::Unsat);
        let fired = samples.load(AtomicOrdering::Relaxed);
        assert!(fired > 0, "probe never fired");
        // Samples are spaced at least an interval apart.
        assert!(high_water.load(AtomicOrdering::Relaxed) >= 4 * fired);
        // Clearing the probe stops the sampling.
        s.set_progress_probe(None);
        let before = samples.load(AtomicOrdering::Relaxed);
        let mut again = Solver::new();
        pigeonhole(&mut again, 4);
        again.solve();
        assert_eq!(samples.load(AtomicOrdering::Relaxed), before);
    }

    #[test]
    fn conflict_limit_budgets_a_single_call() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        s.set_conflict_limit(Some(1));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        s.set_conflict_limit(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn memory_budget_interrupts_and_records_a_hit() {
        let budget = crate::MemoryBudget::new(64);
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        s.set_memory_budget(Some(budget.clone()));
        assert!(budget.used() > 64, "the solver registers its footprint");
        assert_eq!(s.solve(), SolveResult::Interrupted);
        assert!(budget.hits() > 0, "the stop is attributable to memory");
        drop(s);
        assert_eq!(budget.used(), 0, "dropping releases the registration");
        assert!(budget.hits() > 0, "hits survive the release");
        // A roomy budget lets the same formula finish.
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        s.set_memory_budget(Some(crate::MemoryBudget::new(u64::MAX)));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn cloned_solvers_do_not_double_release_the_budget() {
        let budget = crate::MemoryBudget::new(u64::MAX);
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        s.set_memory_budget(Some(budget.clone()));
        let used = budget.used();
        assert!(used > 0);
        let clone = s.clone();
        drop(clone);
        assert_eq!(
            budget.used(),
            used,
            "a clone never registered bytes, so its drop must release none"
        );
        drop(s);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn injected_interrupt_fires_exactly_once() {
        use crate::{FaultKind, FaultPlan, FaultSite};
        let plan = FaultPlan::inject(FaultSite::Conflict, FaultKind::Interrupt, 1);
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        s.set_faults(plan.clone());
        assert_eq!(s.solve(), SolveResult::Interrupted);
        assert!(plan.fired());
        // The plan never re-fires: the retry answers definitively.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn injected_panic_at_an_allocation_unwinds() {
        use crate::{FaultKind, FaultPlan, FaultSite};
        let plan = FaultPlan::inject(FaultSite::Alloc, FaultKind::Panic, 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s = Solver::new();
            s.set_faults(plan.clone());
            pigeonhole(&mut s, 3);
            s.solve()
        }));
        assert!(outcome.is_err(), "the injected panic must surface");
        assert!(plan.fired());
    }

    #[test]
    fn injected_alloc_interrupt_stops_the_next_solve() {
        use crate::{FaultKind, FaultPlan, FaultSite};
        let plan = FaultPlan::inject(FaultSite::Alloc, FaultKind::Interrupt, 1);
        let mut s = Solver::new();
        s.set_faults(plan.clone());
        pigeonhole(&mut s, 4);
        assert!(plan.fired(), "the first clause allocation ticks the site");
        assert_eq!(s.solve(), SolveResult::Interrupted);
        assert_eq!(
            s.solve(),
            SolveResult::Unsat,
            "the spurious stop is one-shot"
        );
    }

    #[test]
    fn conflict_limit_does_not_mask_easy_answers() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([lit(&v, 0, false), lit(&v, 1, false)], 1);
        s.set_conflict_limit(Some(0));
        assert_eq!(s.solve(), SolveResult::Sat);
        // A root-level refutation is still reported as Unsat, not a budget
        // overrun.
        s.add_clause([lit(&v, 0, false)], 1);
        s.add_clause([lit(&v, 0, true)], 1);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn adding_clause_after_root_conflict_is_ignored() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([lit(&v, 0, false)], 1);
        s.add_clause([lit(&v, 0, true)], 1);
        s.add_clause([lit(&v, 0, false)], 1);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_makes_formula_unsat() {
        let mut s = Solver::new();
        s.add_clause(std::iter::empty(), 1);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("proof");
        proof
            .check()
            .expect("empty clause proof is trivially valid");
    }

    #[test]
    fn proofs_reference_partitions() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([lit(&v, 0, false)], 1);
        s.add_clause([lit(&v, 0, true), lit(&v, 1, false)], 1);
        s.add_clause([lit(&v, 1, true)], 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("proof");
        assert_eq!(proof.num_partitions(), 2);
        assert_eq!(proof.num_original(), 3);
    }

    #[test]
    fn minimization_shrinks_learned_clauses_and_keeps_proofs_exact() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(
            s.stats().minimized_literals > 0,
            "php(5) must exercise learned-clause minimization"
        );
        // Every chain — including the minimization extension steps — must
        // replay to a subset of its recorded clause.
        s.proof().expect("proof").check().expect("exact chains");
    }

    #[test]
    fn db_reduction_fires_and_keeps_answers() {
        let mut with = Solver::new();
        with.set_proof_logging(false);
        with.set_reduce_interval(Some(10));
        pigeonhole(&mut with, 6);
        assert_eq!(with.solve(), SolveResult::Unsat);
        let stats = with.stats();
        assert!(stats.db_reductions > 0, "reduction must trigger");
        assert!(stats.learned_deleted > 0, "reduction must delete clauses");

        let mut without = Solver::new();
        without.set_proof_logging(false);
        without.set_reduce_interval(None);
        pigeonhole(&mut without, 6);
        assert_eq!(without.solve(), SolveResult::Unsat);
        assert_eq!(without.stats().db_reductions, 0);
        assert_eq!(without.stats().learned_deleted, 0);
    }

    #[test]
    fn db_reduction_with_proof_logging_keeps_proofs_valid() {
        let mut s = Solver::new();
        s.set_reduce_interval(Some(5));
        pigeonhole(&mut s, 5);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().db_reductions > 0, "reduction passes must run");
        // Chain-referenced clauses were pinned, so the export still
        // replays end to end.
        let proof = s.proof().expect("proof");
        proof.check().expect("proof survives reductions");
    }

    #[test]
    fn reduction_survives_incremental_reuse() {
        // Solve, reduce, then keep querying the same solver under
        // assumptions: retired clauses must not be missed.
        let mut s = Solver::new();
        s.set_proof_logging(false);
        s.set_reduce_interval(Some(8));
        pigeonhole(&mut s, 5);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().db_reductions > 0);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn garbage_collection_compacts_the_arena() {
        let mut s = Solver::new();
        s.set_proof_logging(false);
        s.set_reduce_interval(Some(8));
        pigeonhole(&mut s, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let (len, wasted) = s.arena_words();
        assert!(
            wasted * 3 < len.max(1),
            "GC must keep garbage below a third of the arena ({wasted}/{len})"
        );
        assert!(s.stats().learned_deleted > 0);
    }

    #[test]
    fn remove_root_satisfied_drops_deactivated_clauses() {
        let mut s = Solver::new();
        s.set_proof_logging(false);
        let v = vars(&mut s, 3);
        // An activation-literal pattern: a guard, two guarded clauses.
        let guard = lit(&v, 0, false);
        s.add_clause([!guard, lit(&v, 1, false), lit(&v, 2, false)], 0);
        s.add_clause([!guard, lit(&v, 1, true)], 0);
        let before = s.num_clauses();
        // Retire the guard: the guarded clauses become root-satisfied.
        s.add_clause([!guard], 0);
        s.remove_root_satisfied();
        assert!(
            s.num_clauses() < before,
            "retired clauses must leave the database"
        );
        assert_eq!(s.solve(), SolveResult::Sat);
        // The sweep must not have touched live constraints.
        s.add_clause([lit(&v, 1, false)], 0);
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 1, true)]),
            SolveResult::Unsat
        );
    }

    #[test]
    fn remove_root_satisfied_is_a_noop_with_proof_logging() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([lit(&v, 0, false), lit(&v, 1, false)], 1);
        s.add_clause([lit(&v, 0, false)], 1);
        let before = s.num_clauses();
        s.remove_root_satisfied();
        assert_eq!(s.num_clauses(), before, "proofs may reference any clause");
    }

    #[test]
    fn proof_logging_toggle_is_rejected_after_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([lit(&v, 0, false)], 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.set_proof_logging(false);
        }));
        assert!(result.is_err(), "late toggles must panic");
    }

    #[test]
    fn proof_export_skips_unused_learned_clauses() {
        // A formula with an easy refutation plus satisfiable padding the
        // search may learn about: the export keeps every original clause
        // but only the cone of the refutation.
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("proof");
        proof.check().expect("valid");
        assert!(
            (proof.num_learned() as u64) <= s.stats().learned,
            "export must not invent clauses"
        );
        let refs_in_cone = proof.num_learned();
        // Solve again after the fact: the export is stable.
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.proof().expect("proof").num_learned(), refs_in_cone);
    }

    #[test]
    fn duplicate_assumptions_open_dummy_levels_safely() {
        // Already-true assumptions open decision levels that assign no
        // variable, so a conflict can occur at a level greater than the
        // variable count — the LBD stamp array must grow, not panic.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([lit(&v, 2, true), lit(&v, 1, false)], 1);
        s.add_clause([lit(&v, 2, true), lit(&v, 1, true)], 1);
        let a = lit(&v, 0, false);
        let c = lit(&v, 2, false);
        assert_eq!(
            s.solve_with_assumptions(&[a, a, a, a, c]),
            SolveResult::Unsat
        );
        assert!(!s.assumption_core().is_empty());
        assert_eq!(s.solve_with_assumptions(&[a, a, a, a]), SolveResult::Sat);
    }

    #[test]
    fn binary_chains_propagate_through_the_fast_path() {
        // A long implication chain of binary clauses, driven from an
        // assumption so the whole chain runs through the binary fast path
        // during search (attach-time enqueues would bypass it).
        let mut s = Solver::new();
        let v = vars(&mut s, 16);
        for i in 0..15 {
            s.add_clause([lit(&v, i, true), lit(&v, i + 1, false)], 1);
        }
        let before = s.stats().propagations;
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 0, false), lit(&v, 15, true)]),
            SolveResult::Unsat
        );
        assert!(
            s.stats().propagations - before >= 15,
            "the chain must propagate through the binary watchers"
        );
        assert!(!s.assumption_core().is_empty());
        assert_eq!(s.solve(), SolveResult::Sat);

        // The same chain closed by units still yields an exact proof.
        let mut closed = Solver::new();
        let w = vars(&mut closed, 16);
        closed.add_clause([lit(&w, 0, false)], 1);
        for i in 0..15 {
            closed.add_clause([lit(&w, i, true), lit(&w, i + 1, false)], 1);
        }
        closed.add_clause([lit(&w, 15, true)], 2);
        assert_eq!(closed.solve(), SolveResult::Unsat);
        closed.proof().expect("proof").check().expect("valid proof");
    }
}
