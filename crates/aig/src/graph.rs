//! The And-Inverter Graph data structure with structural hashing.

use crate::Lit;
use std::collections::HashMap;
use std::fmt;

/// Index of a node inside an [`Aig`].
pub type NodeId = u32;

/// Index of a latch (register) inside an [`Aig`].
pub type LatchId = usize;

/// The kind of a single AIG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AigNode {
    /// The constant-false node.  Always node 0.
    Const,
    /// A primary input; `index` is its position in the input list.
    Input {
        /// Position of the input in the `Aig` input-list order.
        index: usize,
    },
    /// A latch (state-holding register); `index` is its position in the
    /// latch list.
    Latch {
        /// Position of the latch in [`Aig::latches`] order.
        index: usize,
    },
    /// A two-input AND gate over (possibly complemented) fan-in literals.
    And {
        /// First fan-in literal (normalised to be `<=` the second).
        left: Lit,
        /// Second fan-in literal.
        right: Lit,
    },
}

/// Coarse classification of a node, convenient for encoders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// The constant node.
    Const,
    /// Primary input with its index.
    Input(usize),
    /// Latch with its index.
    Latch(usize),
    /// Internal AND gate.
    And,
}

#[derive(Clone, Debug)]
struct LatchData {
    node: NodeId,
    next: Lit,
    init: bool,
}

/// A sequential And-Inverter Graph.
///
/// Nodes are created through the gate constructors ([`Aig::and`],
/// [`Aig::or`], [`Aig::xor`], ...) which perform constant folding and
/// structural hashing, so building the same function twice returns the same
/// literal.
///
/// A design consists of primary inputs, latches (each with an initial value
/// and a next-state literal), ordinary outputs and *bad-state* literals.  A
/// safety property `p` is represented by a bad literal equal to `¬p`.
#[derive(Clone)]
pub struct Aig {
    nodes: Vec<AigNode>,
    inputs: Vec<NodeId>,
    latches: Vec<LatchData>,
    outputs: Vec<Lit>,
    bad: Vec<Lit>,
    strash: HashMap<(Lit, Lit), NodeId>,
    name: String,
}

impl Default for Aig {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Aig")
            .field("name", &self.name)
            .field("inputs", &self.inputs.len())
            .field("latches", &self.latches.len())
            .field("ands", &self.num_ands())
            .field("outputs", &self.outputs.len())
            .field("bad", &self.bad.len())
            .finish()
    }
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![AigNode::Const],
            inputs: Vec::new(),
            latches: Vec::new(),
            outputs: Vec::new(),
            bad: Vec::new(),
            strash: HashMap::new(),
            name: String::new(),
        }
    }

    /// Sets a human-readable design name (used in benchmark reports).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Returns the design name (empty if never set).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes, including the constant node.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And { .. }))
            .count()
    }

    /// Number of ordinary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of bad-state literals (safety properties).
    pub fn num_bad(&self) -> usize {
        self.bad.len()
    }

    /// Returns the node stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> AigNode {
        self.nodes[id as usize]
    }

    /// Returns the coarse [`VarKind`] of a node.
    pub fn kind(&self, id: NodeId) -> VarKind {
        match self.nodes[id as usize] {
            AigNode::Const => VarKind::Const,
            AigNode::Input { index } => VarKind::Input(index),
            AigNode::Latch { index } => VarKind::Latch(index),
            AigNode::And { .. } => VarKind::And,
        }
    }

    /// Iterates over all node ids in topological order (fan-ins precede
    /// fan-outs by construction).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.nodes.len() as NodeId
    }

    /// Adds a new primary input and returns its node id.
    pub fn add_input(&mut self) -> NodeId {
        let id = self.nodes.len() as NodeId;
        let index = self.inputs.len();
        self.nodes.push(AigNode::Input { index });
        self.inputs.push(id);
        id
    }

    /// Adds a new latch with the given reset value and returns its id.
    ///
    /// The next-state function defaults to the latch's own output (a
    /// self-loop) until [`Aig::set_next`] is called.
    pub fn add_latch(&mut self, init: bool) -> LatchId {
        let node = self.nodes.len() as NodeId;
        let index = self.latches.len();
        self.nodes.push(AigNode::Latch { index });
        self.latches.push(LatchData {
            node,
            next: Lit::positive(node),
            init,
        });
        index
    }

    /// Sets the next-state function of latch `latch`.
    pub fn set_next(&mut self, latch: LatchId, next: Lit) {
        self.latches[latch].next = next;
    }

    /// Returns the next-state literal of latch `latch`.
    pub fn next(&self, latch: LatchId) -> Lit {
        self.latches[latch].next
    }

    /// Returns the reset value of latch `latch`.
    pub fn init(&self, latch: LatchId) -> bool {
        self.latches[latch].init
    }

    /// Returns the node id holding latch `latch`.
    pub fn latch_node(&self, latch: LatchId) -> NodeId {
        self.latches[latch].node
    }

    /// Returns the positive literal of latch `latch`.
    pub fn latch_lit(&self, latch: LatchId) -> Lit {
        Lit::positive(self.latches[latch].node)
    }

    /// Returns the node id of primary input `index`.
    pub fn input_node(&self, index: usize) -> NodeId {
        self.inputs[index]
    }

    /// Returns the positive literal of primary input `index`.
    pub fn input_lit(&self, index: usize) -> Lit {
        Lit::positive(self.inputs[index])
    }

    /// Registers an ordinary output.
    pub fn add_output(&mut self, lit: Lit) {
        self.outputs.push(lit);
    }

    /// Returns output `index`.
    pub fn output(&self, index: usize) -> Lit {
        self.outputs[index]
    }

    /// Registers a bad-state literal (the negation of a safety property).
    pub fn add_bad(&mut self, lit: Lit) {
        self.bad.push(lit);
    }

    /// Promotes every ordinary output to a bad-state property and returns
    /// how many were promoted.
    ///
    /// Benchmark files predating AIGER 1.9 have no `B` section — by the
    /// HWMCC convention each *output* is then a bad-state literal.  The
    /// promotion only applies when the design has no explicit bad-state
    /// properties; a design that already carries a `B` section is left
    /// untouched (its outputs are plain observables).
    pub fn promote_outputs_to_bad(&mut self) -> usize {
        if !self.bad.is_empty() {
            return 0;
        }
        self.bad = self.outputs.clone();
        self.bad.len()
    }

    /// Restricts the bad-state list to the given properties, in the
    /// given order (used to focus a verification model on one property
    /// before preprocessing).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_bads(&mut self, indices: &[usize]) {
        self.bad = indices.iter().map(|&i| self.bad[i]).collect();
    }

    /// Returns bad-state literal `index`.
    pub fn bad(&self, index: usize) -> Lit {
        self.bad[index]
    }

    /// Replaces bad-state literal `index`.
    pub fn set_bad(&mut self, index: usize, lit: Lit) {
        self.bad[index] = lit;
    }

    /// Creates (or reuses) an AND gate over `a` and `b`.
    ///
    /// Constant folding is applied first, then the fan-in pair is normalised
    /// and looked up in the structural hash table, so structurally identical
    /// gates are shared.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant folding and trivial cases.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let (left, right) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(left, right)) {
            return Lit::positive(id);
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(AigNode::And { left, right });
        self.strash.insert((left, right), id);
        Lit::positive(id)
    }

    /// Creates an OR gate (`a ∨ b`) via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Creates an XOR gate (`a ⊕ b`).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t0 = self.and(a, !b);
        let t1 = self.and(!a, b);
        self.or(t0, t1)
    }

    /// Creates an XNOR / equivalence gate (`a ↔ b`).
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Creates an implication gate (`a → b`).
    pub fn implies(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(!a, b)
    }

    /// Creates a multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let on = self.and(sel, t);
        let off = self.and(!sel, e);
        self.or(on, off)
    }

    /// Conjunction of an arbitrary number of literals (true for empty input).
    pub fn and_many<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let mut acc = Lit::TRUE;
        for l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// Disjunction of an arbitrary number of literals (false for empty input).
    pub fn or_many<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let mut acc = Lit::FALSE;
        for l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Returns the fan-in literals of an AND node, or `None` for leaves.
    pub fn and_fanins(&self, id: NodeId) -> Option<(Lit, Lit)> {
        match self.nodes[id as usize] {
            AigNode::And { left, right } => Some((left, right)),
            _ => None,
        }
    }

    /// Returns an iterator over `(LatchId, next-state literal, init value)`.
    pub fn latches(&self) -> impl Iterator<Item = (LatchId, Lit, bool)> + '_ {
        self.latches
            .iter()
            .enumerate()
            .map(|(i, l)| (i, l.next, l.init))
    }

    /// Returns an iterator over all bad-state literals.
    pub fn bad_lits(&self) -> impl Iterator<Item = Lit> + '_ {
        self.bad.iter().copied()
    }

    /// Returns an iterator over all ordinary outputs.
    pub fn outputs(&self) -> impl Iterator<Item = Lit> + '_ {
        self.outputs.iter().copied()
    }

    /// Builds a literal asserting that every latch holds its reset value.
    ///
    /// This is the symbolic initial-state predicate `S0` used by the
    /// model-checking engines.
    pub fn initial_state_lit(&mut self) -> Lit {
        let lits: Vec<Lit> = (0..self.num_latches())
            .map(|i| self.latch_lit(i).xor_complement(!self.init(i)))
            .collect();
        self.and_many(lits)
    }

    /// Evaluates a literal under a full assignment to inputs and latches.
    ///
    /// `inputs[i]` is the value of primary input `i` and `latches[i]` the
    /// value of latch `i`.  Internal AND nodes are evaluated on demand.
    ///
    /// # Panics
    ///
    /// Panics if the slices are shorter than the respective counts.
    pub fn eval(&self, lit: Lit, inputs: &[bool], latches: &[bool]) -> bool {
        let mut values: Vec<Option<bool>> = vec![None; self.nodes.len()];
        values[0] = Some(false);
        self.eval_rec(lit.node(), inputs, latches, &mut values) ^ lit.is_complemented()
    }

    fn eval_rec(
        &self,
        id: NodeId,
        inputs: &[bool],
        latches: &[bool],
        values: &mut Vec<Option<bool>>,
    ) -> bool {
        if let Some(v) = values[id as usize] {
            return v;
        }
        let v = match self.nodes[id as usize] {
            AigNode::Const => false,
            AigNode::Input { index } => inputs[index],
            AigNode::Latch { index } => latches[index],
            AigNode::And { left, right } => {
                let l =
                    self.eval_rec(left.node(), inputs, latches, values) ^ left.is_complemented();
                let r =
                    self.eval_rec(right.node(), inputs, latches, values) ^ right.is_complemented();
                l && r
            }
        };
        values[id as usize] = Some(v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_aig_contains_only_constant() {
        let aig = Aig::new();
        assert_eq!(aig.num_nodes(), 1);
        assert_eq!(aig.node(0), AigNode::Const);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn and_constant_folding() {
        let mut aig = Aig::new();
        let a = Lit::positive(aig.add_input());
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::FALSE, a), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(Lit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_shares_gates() {
        let mut aig = Aig::new();
        let a = Lit::positive(aig.add_input());
        let b = Lit::positive(aig.add_input());
        let g1 = aig.and(a, b);
        let g2 = aig.and(b, a);
        assert_eq!(g1, g2);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn or_and_xor_truth_tables() {
        let mut aig = Aig::new();
        let a = Lit::positive(aig.add_input());
        let b = Lit::positive(aig.add_input());
        let o = aig.or(a, b);
        let x = aig.xor(a, b);
        let e = aig.iff(a, b);
        let m = aig.mux(a, b, !b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let inputs = [va, vb];
            assert_eq!(aig.eval(o, &inputs, &[]), va || vb);
            assert_eq!(aig.eval(x, &inputs, &[]), va ^ vb);
            assert_eq!(aig.eval(e, &inputs, &[]), va == vb);
            assert_eq!(aig.eval(m, &inputs, &[]), if va { vb } else { !vb });
        }
    }

    #[test]
    fn latch_defaults_to_self_loop() {
        let mut aig = Aig::new();
        let l = aig.add_latch(true);
        assert_eq!(aig.next(l), aig.latch_lit(l));
        assert!(aig.init(l));
    }

    #[test]
    fn initial_state_lit_matches_reset_values() {
        let mut aig = Aig::new();
        let l0 = aig.add_latch(false);
        let l1 = aig.add_latch(true);
        let s0 = aig.initial_state_lit();
        assert!(aig.eval(s0, &[], &[false, true]));
        assert!(!aig.eval(s0, &[], &[true, true]));
        assert!(!aig.eval(s0, &[], &[false, false]));
        let _ = (l0, l1);
    }

    #[test]
    fn and_many_and_or_many() {
        let mut aig = Aig::new();
        let lits: Vec<Lit> = (0..4).map(|_| Lit::positive(aig.add_input())).collect();
        let conj = aig.and_many(lits.iter().copied());
        let disj = aig.or_many(lits.iter().copied());
        assert!(aig.eval(conj, &[true, true, true, true], &[]));
        assert!(!aig.eval(conj, &[true, true, false, true], &[]));
        assert!(aig.eval(disj, &[false, false, true, false], &[]));
        assert!(!aig.eval(disj, &[false, false, false, false], &[]));
        assert_eq!(aig.and_many(std::iter::empty()), Lit::TRUE);
        assert_eq!(aig.or_many(std::iter::empty()), Lit::FALSE);
    }

    #[test]
    fn kind_classification() {
        let mut aig = Aig::new();
        let i = aig.add_input();
        let l = aig.add_latch(false);
        let a = aig.and(Lit::positive(i), aig.latch_lit(l));
        assert_eq!(aig.kind(0), VarKind::Const);
        assert_eq!(aig.kind(i), VarKind::Input(0));
        assert_eq!(aig.kind(aig.latch_node(l)), VarKind::Latch(0));
        assert_eq!(aig.kind(a.node()), VarKind::And);
    }

    #[test]
    fn bad_and_outputs_are_recorded() {
        let mut aig = Aig::new();
        let a = Lit::positive(aig.add_input());
        aig.add_output(a);
        aig.add_bad(!a);
        assert_eq!(aig.num_outputs(), 1);
        assert_eq!(aig.num_bad(), 1);
        assert_eq!(aig.output(0), a);
        assert_eq!(aig.bad(0), !a);
        aig.set_bad(0, a);
        assert_eq!(aig.bad(0), a);
    }
}
