//! The verification engines evaluated in the paper, plus the IC3/PDR
//! competitor every modern checker ships.

pub mod bmc;
pub mod itp;
pub mod itpseq;
pub mod itpseq_cba;
pub mod pdr;
pub(crate) mod seq;
pub mod sitpseq;
