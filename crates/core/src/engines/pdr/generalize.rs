//! Cube generalization: assumption-core shrinking plus CTG-style down.
//!
//! A blocked obligation yields a core-shrunk cube whose negation is a
//! valid lemma — but usually not the *strongest* one.  This module drops
//! further literals MIC-style: each candidate (cube minus one literal) is
//! re-checked for relative induction, and when the check fails on a
//! *counterexample to generalization* (a predecessor state that is itself
//! unreachable), the CTG is blocked one frame down first and the
//! candidate retried (Hassan, Bradley, Somenzi — *Better generalization
//! in IC3*, FMCAD 2013).

use super::frames::Cube;
use super::{Pdr, Query};

/// Counterexamples-to-generalization handled per candidate before giving
/// up on a literal drop.
const MAX_CTGS: usize = 3;

/// Strengthens the lemma `¬seed` (already blocked at `frame`) by dropping
/// as many literals as relative induction allows.
pub(super) fn generalize(pdr: &mut Pdr<'_>, frame: usize, seed: Cube) -> Cube {
    let mut cube = seed;
    let mut index = 0;
    while index < cube.len() && cube.len() > 1 {
        if pdr.timed_out() {
            break;
        }
        let candidate = cube.without(index);
        match try_block(pdr, frame, candidate) {
            // The candidate (or a sub-cube of it) is blocked too: adopt it
            // and retry the same position, which now holds the next
            // literal.
            Some(shrunk) => cube = shrunk,
            None => index += 1,
        }
    }
    cube
}

/// Attempts to show `cube` unreachable relative to `F_{frame-1}`,
/// dispatching up to [`MAX_CTGS`] counterexamples-to-generalization along
/// the way.  Returns the core-shrunk blocked cube on success.
fn try_block(pdr: &mut Pdr<'_>, frame: usize, cube: Cube) -> Option<Cube> {
    let mut ctgs = 0;
    loop {
        if cube.is_empty() || cube.contains_state(&pdr.init) || pdr.timed_out() {
            return None;
        }
        match pdr.relative_induction(frame, &cube) {
            Query::Blocked(core) => return Some(core),
            Query::Predecessor(ctg) => {
                // The candidate has a predecessor.  If that predecessor is
                // itself unreachable one frame down, learn a lemma against
                // it and retry; otherwise the drop fails.
                if ctgs >= MAX_CTGS || frame < 2 || ctg.contains_state(&pdr.init) {
                    return None;
                }
                match pdr.relative_induction(frame - 1, &ctg) {
                    Query::Blocked(ctg_core) => {
                        ctgs += 1;
                        let at = push_lemma_up(pdr, frame - 1, &ctg_core);
                        pdr.add_lemma(at, ctg_core);
                    }
                    Query::Predecessor(_) => return None,
                }
            }
        }
    }
}

/// Returns the highest frame (at least `from`, at most the frontier) at
/// which `cube` is still relatively inductive.
fn push_lemma_up(pdr: &mut Pdr<'_>, from: usize, cube: &Cube) -> usize {
    let mut at = from;
    while at < pdr.frames.level() {
        match pdr.relative_induction(at + 1, cube) {
            Query::Blocked(_) => at += 1,
            Query::Predecessor(_) => break,
        }
    }
    at
}
