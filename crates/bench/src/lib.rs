//! Experiment harness shared by the figure/table regenerator binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section:
//!
//! * `fig6` — sorted run-time curves of the four engines over the suite,
//! * `table1` — the per-benchmark table with BDD diameters and
//!   `Time / k_fp / j_fp` per engine,
//! * `fig7` — the exact-k versus assume-k scatter for ITPSEQ,
//! * `ablation_alpha` — the `αs` sweep for the serial sequences.
//!
//! Absolute run times obviously differ from the paper's 2011 hardware and
//! benchmark set; the *shapes* (which engine wins, where overflows appear,
//! how `k_fp`/`j_fp` relate) are the reproduction target.

use mc::{Engine, EngineResult, Options, Verdict};
use std::time::Duration;
use workloads::Benchmark;

/// Result of one engine on one benchmark.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// Engine used.
    pub engine: Engine,
    /// Engine outcome and statistics.
    pub result: EngineResult,
}

impl RunRecord {
    /// Run time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.result.stats.time.as_secs_f64() * 1e3
    }

    /// `k_fp` as reported in Table I (bound reached on overflow).
    pub fn k_fp(&self) -> usize {
        match &self.result.verdict {
            Verdict::Proved { k_fp, .. } => *k_fp,
            Verdict::Falsified { depth } => *depth,
            Verdict::Inconclusive { bound_reached, .. } => *bound_reached,
        }
    }

    /// `j_fp` as reported in Table I (0 on failure, `-` on overflow).
    pub fn j_fp(&self) -> Option<usize> {
        match &self.result.verdict {
            Verdict::Proved { j_fp, .. } => Some(*j_fp),
            Verdict::Falsified { .. } => Some(0),
            Verdict::Inconclusive { .. } => None,
        }
    }

    /// Table-friendly rendering of the verdict cells.
    pub fn cells(&self) -> (String, String, String) {
        match &self.result.verdict {
            Verdict::Proved { k_fp, j_fp } => (
                format!("{:.0}", self.millis()),
                k_fp.to_string(),
                j_fp.to_string(),
            ),
            Verdict::Falsified { depth } => (
                format!("{:.0}", self.millis()),
                depth.to_string(),
                "0".to_string(),
            ),
            Verdict::Inconclusive { bound_reached, .. } => (
                "ovf".to_string(),
                format!("({bound_reached})"),
                "-".to_string(),
            ),
        }
    }
}

/// Runs one engine on one benchmark with the given per-instance budget.
pub fn run_engine(benchmark: &Benchmark, engine: Engine, options: &Options) -> RunRecord {
    let result = engine.verify(&benchmark.aig, 0, options);
    RunRecord {
        benchmark: benchmark.name.clone(),
        engine,
        result,
    }
}

/// The per-instance options used by the experiment binaries: a small time
/// budget per run (scaled-down analogue of the paper's 1800 s limit) and a
/// generous bound.
pub fn experiment_options() -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(5))
        .with_max_bound(40)
}

/// Formats a monotone (sorted) run-time curve like Fig. 6: the i-th value
/// is the i-th smallest solved-instance time; unsolved instances are
/// reported as the timeout value.
pub fn sorted_curve(records: &[RunRecord], timeout: Duration) -> Vec<f64> {
    let mut times: Vec<f64> = records
        .iter()
        .map(|r| {
            if r.result.verdict.is_conclusive() {
                r.millis()
            } else {
                timeout.as_secs_f64() * 1e3
            }
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_cells_render_all_verdicts() {
        let suite = workloads::suite::mid_size();
        let options = Options::default()
            .with_timeout(Duration::from_secs(2))
            .with_max_bound(20);
        let record = run_engine(&suite[0], Engine::ItpSeq, &options);
        let (time, k, j) = record.cells();
        assert!(!time.is_empty() && !k.is_empty() && !j.is_empty());
    }

    #[test]
    fn sorted_curve_is_monotone() {
        let suite: Vec<workloads::Benchmark> =
            workloads::suite::mid_size().into_iter().take(4).collect();
        let options = Options::default()
            .with_timeout(Duration::from_secs(2))
            .with_max_bound(20);
        let records: Vec<RunRecord> = suite
            .iter()
            .map(|b| run_engine(b, Engine::SerialItpSeq, &options))
            .collect();
        let curve = sorted_curve(&records, options.timeout);
        assert_eq!(curve.len(), 4);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
    }
}
