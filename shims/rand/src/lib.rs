//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen_bool`].
//!
//! The build environment has no access to crates.io, and the workspace only
//! uses randomness to *generate* test instances whose expected outcomes are
//! computed independently (brute-force oracles, arithmetic truths, payload
//! logic outside any property cone), so the exact stream does not matter —
//! only determinism per seed does.  The generator is SplitMix64.

use std::ops::{Range, RangeInclusive};

/// Deterministic seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The raw 64-bit generator underlying [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 high-quality mantissa bits, uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: a seeded SplitMix64 stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — tiny and statistically
            // sound for test-instance generation.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&w));
            let x = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
