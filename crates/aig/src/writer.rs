//! ASCII AIGER (`.aag`) writer.

use crate::{Aig, AigNode, Lit};

/// Serialises an [`Aig`] to the ASCII AIGER format.
///
/// Node indices are remapped to the AIGER convention (inputs first, then
/// latches, then AND gates) so the output is always a well-formed `.aag`
/// file, independent of the order in which the graph was built.
///
/// # Example
///
/// ```
/// let mut aig = aig::Aig::new();
/// let a = aig::Lit::positive(aig.add_input());
/// aig.add_output(a);
/// let text = aig::to_aag(&aig);
/// assert!(text.starts_with("aag 1 1 0 1 0"));
/// ```
pub fn to_aag(aig: &Aig) -> String {
    // Assign AIGER variable indices: inputs, latches, ANDs (in node order).
    let mut var_of_node: Vec<u32> = vec![0; aig.num_nodes()];
    let mut next_var = 1u32;
    for i in 0..aig.num_inputs() {
        var_of_node[aig.input_node(i) as usize] = next_var;
        next_var += 1;
    }
    for i in 0..aig.num_latches() {
        var_of_node[aig.latch_node(i) as usize] = next_var;
        next_var += 1;
    }
    let mut and_nodes = Vec::new();
    for id in aig.node_ids() {
        if matches!(aig.node(id), AigNode::And { .. }) {
            var_of_node[id as usize] = next_var;
            next_var += 1;
            and_nodes.push(id);
        }
    }
    let map = |lit: Lit| -> u32 {
        let var = var_of_node[lit.node() as usize];
        (var << 1) | lit.is_complemented() as u32
    };

    let max_var = next_var - 1;
    let mut out = String::new();
    out.push_str(&format!(
        "aag {} {} {} {} {} {}\n",
        max_var,
        aig.num_inputs(),
        aig.num_latches(),
        aig.num_outputs(),
        and_nodes.len(),
        aig.num_bad()
    ));
    for i in 0..aig.num_inputs() {
        out.push_str(&format!("{}\n", map(aig.input_lit(i))));
    }
    for (latch, next, init) in aig.latches() {
        out.push_str(&format!(
            "{} {} {}\n",
            map(aig.latch_lit(latch)),
            map(next),
            init as u32
        ));
    }
    for o in aig.outputs() {
        out.push_str(&format!("{}\n", map(o)));
    }
    for b in aig.bad_lits() {
        out.push_str(&format!("{}\n", map(b)));
    }
    for id in and_nodes {
        let (l, r) = aig.and_fanins(id).expect("and node has fanins");
        out.push_str(&format!(
            "{} {} {}\n",
            var_of_node[id as usize] << 1,
            map(l),
            map(r)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_aag;
    use crate::Aig;

    fn toggler() -> Aig {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        let cur = aig.latch_lit(l);
        aig.set_next(l, !cur);
        aig.add_bad(cur);
        aig
    }

    #[test]
    fn header_counts_match_design() {
        let aig = toggler();
        let text = to_aag(&aig);
        let header: Vec<&str> = text.lines().next().unwrap().split_whitespace().collect();
        assert_eq!(header[0], "aag");
        assert_eq!(header[2], "0"); // inputs
        assert_eq!(header[3], "1"); // latches
        assert_eq!(header[6], "1"); // bad
    }

    #[test]
    fn writer_reader_roundtrip_preserves_behaviour() {
        let aig = toggler();
        let text = to_aag(&aig);
        let back = parse_aag(&text).expect("reparse");
        // The toggler flips its latch every cycle and the bad literal tracks
        // the latch value: 0,1,0,1,...
        let stim = vec![vec![]; 4];
        let trace_a = crate::simulate(&aig, &stim);
        let trace_b = crate::simulate(&back, &stim);
        assert_eq!(trace_a.bad, trace_b.bad);
    }

    #[test]
    fn roundtrip_with_ands_and_inputs() {
        let mut aig = Aig::new();
        let a = crate::Lit::positive(aig.add_input());
        let b = crate::Lit::positive(aig.add_input());
        let l = aig.add_latch(true);
        let cur = aig.latch_lit(l);
        let g = aig.and(a, b);
        let nxt = aig.xor(g, cur);
        aig.set_next(l, nxt);
        aig.add_output(nxt);
        let bad = aig.and(cur, g);
        aig.add_bad(bad);
        let text = to_aag(&aig);
        let back = parse_aag(&text).expect("reparse");
        let stim = vec![
            vec![true, true],
            vec![true, false],
            vec![false, true],
            vec![true, true],
        ];
        assert_eq!(
            crate::simulate(&aig, &stim).bad,
            crate::simulate(&back, &stim).bad
        );
        assert_eq!(
            crate::simulate(&aig, &stim).outputs,
            crate::simulate(&back, &stim).outputs
        );
    }
}
